#include "core/policies.hh"
#include "util/logging.hh"

namespace gpm
{

std::vector<PowerMode>
ChipWideDvfsPolicy::decide(const PolicyInput &in)
{
    GPM_ASSERT(in.predicted != nullptr);
    const ModeMatrix &m = *in.predicted;
    const std::size_t n = m.numCores();

    // Fastest uniform mode that fits; all-slowest as the fallback.
    for (std::size_t mi = 0; mi < m.numModes(); mi++) {
        auto mode = static_cast<PowerMode>(mi);
        std::vector<PowerMode> assign(n, mode);
        if (m.totalPowerW(assign) <= in.budgetW)
            return assign;
    }
    return std::vector<PowerMode>(
        n, static_cast<PowerMode>(m.numModes() - 1));
}

} // namespace gpm
