/**
 * @file
 * First-order lumped RC thermal model per core.
 *
 * The paper motivates global management with chip-level power *and
 * thermal* constraints and evaluates PullHiPushLo, whose objective
 * is balancing power across cores. This model makes that objective
 * measurable: each core is a thermal node with resistance Rth to
 * ambient and capacitance Cth, so
 *
 *     tau * dT/dt = P * Rth - (T - Tamb),   tau = Rth * Cth
 *
 * discretized exactly per interval (exponential step). Steady state
 * is Tamb + P * Rth; the default parameters give a ~60 C steady
 * state for a 9 W core over ambient 45 C with a ~3 ms time
 * constant — hot spots develop within a handful of explore
 * intervals, the paper's operative time scale.
 */

#ifndef GPM_POWER_THERMAL_HH
#define GPM_POWER_THERMAL_HH

#include <cstddef>
#include <vector>

#include "util/units.hh"

namespace gpm
{

/** Physical parameters of one core's thermal node. */
struct ThermalParams
{
    /** Junction-to-ambient thermal resistance [K/W]. */
    double rthKPerW = 1.8;
    /** Thermal capacitance [J/K]. */
    double cthJPerK = 0.0017;
    /** Ambient (heatsink base) temperature [C]. */
    double ambientC = 45.0;

    /** Time constant tau = Rth * Cth [s]. */
    double tauSeconds() const { return rthKPerW * cthJPerK; }
};

/** Lumped RC thermal state of one core. */
class ThermalNode
{
  public:
    /** Start at ambient. */
    explicit ThermalNode(ThermalParams p = ThermalParams{});

    /**
     * Advance the node by @p dt_us under constant power @p power_w
     * (exact exponential update, stable for any dt).
     */
    void step(Watts power_w, MicroSec dt_us);

    /** Current junction temperature [C]. */
    double temperatureC() const { return tempC; }

    /** Steady-state temperature under @p power_w [C]. */
    double steadyStateC(Watts power_w) const;

    /** Highest temperature seen since construction/reset [C]. */
    double peakC() const { return peak; }

    /** Reset to ambient and clear the peak. */
    void reset();

    /** Parameters in force. */
    const ThermalParams &params() const { return prm; }

  private:
    ThermalParams prm;
    double tempC;
    double peak;
};

/**
 * Convenience: per-core thermal tracking for a chip. Step all nodes
 * from a vector of core powers; query per-core and hottest-core
 * temperatures.
 */
class ChipThermalModel
{
  public:
    /** @param cores number of cores; @param p shared parameters. */
    explicit ChipThermalModel(std::size_t cores,
                              ThermalParams p = ThermalParams{});

    /** Advance every core by @p dt_us at its interval power. */
    void step(const std::vector<Watts> &core_power_w,
              MicroSec dt_us);

    /** Temperature of core @p c [C]. */
    double temperatureC(std::size_t c) const;

    /** Hottest current core temperature [C]. */
    double hottestC() const;

    /** Highest temperature any core ever reached [C]. */
    double peakC() const;

    /** Number of cores. */
    std::size_t numCores() const { return nodes.size(); }

  private:
    std::vector<ThermalNode> nodes;
};

} // namespace gpm

#endif // GPM_POWER_THERMAL_HH
