#include "dvfs.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gpm
{

DvfsTable::DvfsTable(std::vector<OperatingPoint> points_,
                     Volts nominal_vdd, Hertz nominal_freq,
                     double slew_rate)
    : points(std::move(points_)), nominalVddV(nominal_vdd),
      nominalFreq(nominal_freq), slewVoltsPerSec(slew_rate)
{
    if (points.empty())
        fatal("DvfsTable requires at least one operating point");
    if (nominal_vdd <= 0 || nominal_freq <= 0 || slew_rate <= 0)
        fatal("DvfsTable: nominal Vdd/f and slew rate must be > 0");
    for (std::size_t i = 0; i < points.size(); i++) {
        const auto &p = points[i];
        if (p.vScale <= 0 || p.fScale <= 0)
            fatal("DvfsTable: mode '%s' has non-positive scales",
                  p.name.c_str());
        if (i > 0 && p.fScale >= points[i - 1].fScale)
            fatal("DvfsTable: modes must be ordered fastest first");
    }
}

DvfsTable
DvfsTable::classic3()
{
    return DvfsTable({{"Turbo", 1.00, 1.00},
                      {"Eff1", 0.95, 0.95},
                      {"Eff2", 0.85, 0.85}},
                     1.300, 1.0e9, 10.0e-3 * 1.0e6 /* 10 mV/us */);
}

DvfsTable
DvfsTable::subLinearVoltage()
{
    return DvfsTable({{"Turbo", 1.000, 1.00},
                      {"Eff1", 0.975, 0.95},
                      {"Eff2", 0.925, 0.85}},
                     1.300, 1.0e9, 10.0e-3 * 1.0e6);
}

DvfsTable
DvfsTable::linear(std::size_t n, double lowest_scale)
{
    GPM_ASSERT(n >= 1);
    GPM_ASSERT(lowest_scale > 0.0 && lowest_scale <= 1.0);
    std::vector<OperatingPoint> pts;
    for (std::size_t i = 0; i < n; i++) {
        double s = n == 1
            ? 1.0
            : 1.0 - (1.0 - lowest_scale) * static_cast<double>(i) /
                static_cast<double>(n - 1);
        // Two-step append instead of `"M" + std::to_string(i)`:
        // operator+(const char*, string&&) trips GCC 12's spurious
        // -Wrestrict at -O2 (libstdc++ PR 105651), which GPM_WERROR
        // escalates.
        std::string name = "M";
        name += std::to_string(i);
        pts.push_back({std::move(name), s, s});
    }
    return DvfsTable(std::move(pts), 1.300, 1.0e9, 10.0e-3 * 1.0e6);
}

const OperatingPoint &
DvfsTable::point(PowerMode m) const
{
    GPM_ASSERT(valid(m));
    return points[m];
}

Volts
DvfsTable::voltage(PowerMode m) const
{
    return nominalVddV * point(m).vScale;
}

Hertz
DvfsTable::frequency(PowerMode m) const
{
    return nominalFreq * point(m).fScale;
}

double
DvfsTable::powerScale(PowerMode m) const
{
    const auto &p = point(m);
    return p.vScale * p.vScale * p.fScale;
}

double
DvfsTable::perfScale(PowerMode m) const
{
    return point(m).fScale;
}

MicroSec
DvfsTable::transitionUs(PowerMode from, PowerMode to) const
{
    double dv = std::abs(voltage(from) - voltage(to));
    return dv / slewVoltsPerSec * usPerSecond;
}

MicroSec
DvfsTable::maxTransitionUs() const
{
    MicroSec best = 0.0;
    for (std::size_t a = 0; a < points.size(); a++)
        for (std::size_t b = 0; b < points.size(); b++)
            best = std::max(best,
                            transitionUs(static_cast<PowerMode>(a),
                                         static_cast<PowerMode>(b)));
    return best;
}

BudgetSchedule::BudgetSchedule(double fraction)
    : steps{{0.0, fraction}}
{
    GPM_ASSERT(fraction > 0.0);
}

BudgetSchedule::BudgetSchedule(
    std::vector<std::pair<MicroSec, double>> steps_)
    : steps(std::move(steps_))
{
    if (steps.empty() || steps.front().first != 0.0)
        fatal("BudgetSchedule: steps must be non-empty and start at 0");
    for (std::size_t i = 1; i < steps.size(); i++)
        if (steps[i].first <= steps[i - 1].first)
            fatal("BudgetSchedule: steps must be time-sorted");
    for (const auto &[t, frac] : steps)
        if (frac <= 0.0)
            fatal("BudgetSchedule: budget fractions must be > 0");
}

double
BudgetSchedule::at(MicroSec t_us) const
{
    double frac = steps.front().second;
    for (const auto &[t, f] : steps) {
        if (t_us >= t)
            frac = f;
        else
            break;
    }
    return frac;
}

} // namespace gpm
