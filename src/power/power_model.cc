#include "power_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpm
{

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::Fetch: return "fetch";
      case Unit::Decode: return "decode";
      case Unit::IssueQueue: return "issueq";
      case Unit::RegFile: return "regfile";
      case Unit::FXU: return "fxu";
      case Unit::FPU: return "fpu";
      case Unit::LSU: return "lsu";
      case Unit::L1I: return "l1i";
      case Unit::L1D: return "l1d";
      case Unit::Bpred: return "bpred";
      case Unit::ClockTree: return "clock";
      default: panic("unitName: bad unit %d", static_cast<int>(u));
    }
}

void
ActivitySample::merge(const ActivitySample &o)
{
    cycles += o.cycles;
    fetched += o.fetched;
    dispatched += o.dispatched;
    issued += o.issued;
    committed += o.committed;
    fxuOps += o.fxuOps;
    fpuOps += o.fpuOps;
    lsuOps += o.lsuOps;
    branches += o.branches;
    l1iAccesses += o.l1iAccesses;
    l1dAccesses += o.l1dAccesses;
    l2Accesses += o.l2Accesses;
    l2Misses += o.l2Misses;
}

void
ActivitySample::reset()
{
    *this = ActivitySample();
}

namespace
{
constexpr std::size_t
idx(Unit u)
{
    return static_cast<std::size_t>(u);
}
} // namespace

CorePowerParams
CorePowerParams::classic()
{
    CorePowerParams p{};
    auto set = [&p](Unit u, Watts max_w, double ungated_frac,
                    double full_rate) {
        p.unitMaxW[idx(u)] = max_w;
        p.ungated[idx(u)] = ungated_frac;
        p.fullRate[idx(u)] = full_rate;
    };
    // Max W at Turbo, ungated fraction, events/cycle at 100% util.
    set(Unit::Fetch,      2.00, 0.15, 5.0);
    set(Unit::Decode,     2.20, 0.12, 5.0);
    set(Unit::IssueQueue, 2.40, 0.20, 5.0);
    set(Unit::RegFile,    2.00, 0.10, 5.0);
    set(Unit::FXU,        2.60, 0.08, 2.0);
    set(Unit::FPU,        3.20, 0.04, 2.0);
    set(Unit::LSU,        2.40, 0.10, 2.0);
    set(Unit::L1I,        1.20, 0.15, 5.0);
    set(Unit::L1D,        1.80, 0.15, 2.0);
    set(Unit::Bpred,      0.60, 0.20, 1.0);
    set(Unit::ClockTree,  1.60, 1.00, 1.0); // never gated
    p.leakageW = 0.30;
    return p;
}

Watts
CorePowerParams::peakW() const
{
    Watts sum = leakageW;
    for (auto w : unitMaxW)
        sum += w;
    return sum;
}

CorePowerModel::CorePowerModel(CorePowerParams params_,
                               const DvfsTable &dvfs_)
    : params(params_), dvfs(dvfs_)
{
}

double
CorePowerModel::utilization(const ActivitySample &s, Unit u) const
{
    if (s.cycles == 0)
        return 0.0;
    double events;
    switch (u) {
      case Unit::Fetch: events = static_cast<double>(s.fetched); break;
      case Unit::Decode:
        events = static_cast<double>(s.dispatched);
        break;
      case Unit::IssueQueue:
        events = static_cast<double>(s.issued);
        break;
      case Unit::RegFile:
        events = static_cast<double>(s.issued);
        break;
      case Unit::FXU: events = static_cast<double>(s.fxuOps); break;
      case Unit::FPU: events = static_cast<double>(s.fpuOps); break;
      case Unit::LSU: events = static_cast<double>(s.lsuOps); break;
      case Unit::L1I:
        events = static_cast<double>(s.l1iAccesses);
        break;
      case Unit::L1D:
        events = static_cast<double>(s.l1dAccesses);
        break;
      case Unit::Bpred:
        events = static_cast<double>(s.branches);
        break;
      case Unit::ClockTree: return 1.0;
      default: panic("utilization: bad unit");
    }
    double rate = events / static_cast<double>(s.cycles);
    double util = rate / params.fullRate[idx(u)];
    return std::min(util, 1.0);
}

Joules
CorePowerModel::energy(const ActivitySample &s, PowerMode m) const
{
    return power(s, m) *
        (static_cast<double>(s.cycles) / dvfs.frequency(m));
}

Watts
CorePowerModel::power(const ActivitySample &s, PowerMode m) const
{
    const auto &pt = dvfs.point(m);
    double dyn_scale = pt.vScale * pt.vScale * pt.fScale;
    Watts dyn = 0.0;
    for (std::size_t u = 0; u < numUnits; u++) {
        double util = utilization(s, static_cast<Unit>(u));
        double g = params.ungated[u];
        dyn += params.unitMaxW[u] * (g + (1.0 - g) * util);
    }
    Watts leak = params.leakageW * pt.vScale;
    return dyn * dyn_scale + leak;
}

Watts
CorePowerModel::stallPower(PowerMode m) const
{
    // Ungated dynamic power (no activity) plus leakage.
    ActivitySample idle{};
    idle.cycles = 1;
    return power(idle, m);
}

UncorePowerModel::UncorePowerModel()
    : params(Params{})
{
}

UncorePowerModel::UncorePowerModel(Params p)
    : params(p)
{
}

Joules
UncorePowerModel::energy(double seconds, std::uint64_t l2_accesses,
                         std::uint64_t l2_misses) const
{
    GPM_ASSERT(seconds >= 0.0);
    return params.baseW * seconds +
        params.l2AccessJ * static_cast<double>(l2_accesses) +
        params.memAccessJ * static_cast<double>(l2_misses);
}

} // namespace gpm
