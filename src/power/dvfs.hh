/**
 * @file
 * DVFS operating points ("power modes") and transition modelling.
 *
 * The paper defines three linear-DVFS modes for POWER4/5-class cores:
 *
 *   Turbo : (Vdd, f)            = (1.300 V, 1.0 GHz)
 *   Eff1  : (0.95 Vdd, 0.95 f)  = (1.235 V, 0.95 GHz)
 *   Eff2  : (0.85 Vdd, 0.85 f)  = (1.105 V, 0.85 GHz)
 *
 * Dynamic power scales cubically with the linear scale s (V^2 * f),
 * performance roughly linearly with f (better for memory-bound code,
 * since memory is asynchronous). Voltage transitions proceed at
 * 10 mV/us, giving the Table 5 overheads of 6.5 / 13 / 19.5 us.
 *
 * DvfsTable supports an arbitrary number of modes so that the
 * mode-count ablation study (chip-wide DVFS with more modes, paper
 * Section 5.3) can be expressed with the same machinery.
 */

#ifndef GPM_POWER_DVFS_HH
#define GPM_POWER_DVFS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace gpm
{

/**
 * Index of a power mode in a DvfsTable. Mode 0 is always the fastest
 * ("Turbo"); higher indices are progressively slower/cheaper.
 */
using PowerMode = std::uint8_t;

/** The paper's three canonical modes. */
namespace modes
{
constexpr PowerMode Turbo = 0;
constexpr PowerMode Eff1 = 1;
constexpr PowerMode Eff2 = 2;
} // namespace modes

/** One DVFS operating point. */
struct OperatingPoint
{
    /** Human-readable mode name ("Turbo", "Eff1", ...). */
    std::string name;
    /** Linear voltage scale relative to nominal Vdd. */
    double vScale;
    /** Linear frequency scale relative to nominal f. */
    double fScale;
};

/**
 * Table of DVFS operating points for one core, plus nominal
 * voltage/frequency and the voltage-regulator slew rate.
 */
class DvfsTable
{
  public:
    /**
     * Build a table from explicit operating points.
     *
     * @param points       modes ordered fastest first
     * @param nominal_vdd  Turbo supply voltage [V]
     * @param nominal_freq Turbo clock frequency [Hz]
     * @param slew_rate    regulator slew rate [V/s]
     */
    DvfsTable(std::vector<OperatingPoint> points, Volts nominal_vdd,
              Hertz nominal_freq, double slew_rate);

    /**
     * The paper's default table: Turbo / Eff1 / Eff2 at
     * (1.0, 0.95, 0.85) linear scale, Vdd 1.300 V, f 1 GHz,
     * slew 10 mV/us.
     */
    static DvfsTable classic3();

    /**
     * A linear table with @p n modes spanning scale 1.0 down to
     * @p lowest_scale (inclusive); used by the mode-count ablation.
     */
    static DvfsTable linear(std::size_t n, double lowest_scale = 0.85);

    /**
     * Sub-linear voltage variant of classic3(): frequency scales as
     * usual (1.0 / 0.95 / 0.85) but voltage only half as fast
     * (1.0 / 0.975 / 0.925). Models emerging low-Vdd generations
     * where the paper notes linear V-f scaling is optimistic: power
     * drops less than cubically, raising the all-Eff2 power floor.
     */
    static DvfsTable subLinearVoltage();

    /** Number of modes. */
    std::size_t numModes() const { return points.size(); }

    /** Operating point of @p m. */
    const OperatingPoint &point(PowerMode m) const;

    /** Absolute supply voltage of mode @p m [V]. */
    Volts voltage(PowerMode m) const;

    /** Absolute clock frequency of mode @p m [Hz]. */
    Hertz frequency(PowerMode m) const;

    /** Nominal (Turbo) frequency [Hz]. */
    Hertz nominalFrequency() const { return nominalFreq; }

    /** Nominal (Turbo) supply voltage [V]. */
    Volts nominalVdd() const { return nominalVddV; }

    /**
     * Idealized dynamic-power scale of mode @p m relative to Turbo:
     * vScale^2 * fScale (cubic for linear DVFS).
     */
    double powerScale(PowerMode m) const;

    /**
     * Idealized performance (BIPS) scale of mode @p m relative to
     * Turbo: fScale (an upper bound on degradation; memory-bound
     * code does better).
     */
    double perfScale(PowerMode m) const;

    /**
     * Voltage-transition time between two modes [us]
     * (|dV| / slew rate); 0 for from == to.
     */
    MicroSec transitionUs(PowerMode from, PowerMode to) const;

    /** Largest transition time in the table [us]. */
    MicroSec maxTransitionUs() const;

    /** True when @p m is a valid mode index. */
    bool valid(PowerMode m) const { return m < points.size(); }

    /** Slowest (cheapest) mode index. */
    PowerMode slowest() const
    {
        return static_cast<PowerMode>(points.size() - 1);
    }

  private:
    std::vector<OperatingPoint> points;
    Volts nominalVddV;
    Hertz nominalFreq;
    double slewVoltsPerSec;
};

/**
 * A time-varying chip power budget, expressed as a fraction of a
 * reference "maximum chip power" (the all-Turbo average power of the
 * workload combination under study). Piecewise-constant in time so
 * the Figure 6 scenario (budget drop from 90% to 70% mid-run, e.g. a
 * cooling failure) can be expressed.
 */
class BudgetSchedule
{
  public:
    /** Constant budget at @p fraction of reference power. */
    explicit BudgetSchedule(double fraction);

    /**
     * Piecewise-constant budget: steps.at(k) = {time_us, fraction}
     * applies from time_us onward. Must be sorted by time and start
     * at 0.
     */
    explicit BudgetSchedule(
        std::vector<std::pair<MicroSec, double>> steps);

    /** Budget fraction in effect at time @p t_us. */
    double at(MicroSec t_us) const;

    /** First (t = 0) budget fraction. */
    double initial() const { return steps.front().second; }

  private:
    std::vector<std::pair<MicroSec, double>> steps;
};

} // namespace gpm

#endif // GPM_POWER_DVFS_HH
