/**
 * @file
 * Unit-level, activity-based core power model — our stand-in for
 * IBM PowerTimer.
 *
 * The model divides the core into microarchitectural units (fetch,
 * decode/dispatch, issue queues, register files, FXU, FPU, LSU, L1
 * caches, clock tree). Each unit has a maximum power at the nominal
 * operating point and an "ungated" fraction consumed even when idle
 * (imperfect clock gating); the rest scales with per-interval
 * utilization. Dynamic power scales as vScale^2 * fScale across DVFS
 * modes; leakage scales with voltage only. With the default
 * parameters ~2% of Turbo power is leakage, which lands the measured
 * full-suite DVFS savings at the paper's ~14.1% / ~38.3% (slightly
 * below the ideal cubic 14.3% / 38.6%).
 *
 * The L2 and memory controller live in a separate, fixed clock/voltage
 * domain (the paper scales L2/memory *cycle* latencies with core
 * frequency, which implies asynchronous uncore); UncorePowerModel
 * accounts for them and is not DVFS-scaled.
 */

#ifndef GPM_POWER_POWER_MODEL_HH
#define GPM_POWER_POWER_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "power/dvfs.hh"
#include "util/units.hh"

namespace gpm
{

/** Microarchitectural units tracked by the power model. */
enum class Unit : std::uint8_t
{
    Fetch = 0,
    Decode,
    IssueQueue,
    RegFile,
    FXU,
    FPU,
    LSU,
    L1I,
    L1D,
    Bpred,
    ClockTree,
    NumUnits,
};

constexpr std::size_t numUnits =
    static_cast<std::size_t>(Unit::NumUnits);

/** Printable unit name. */
const char *unitName(Unit u);

/**
 * Per-interval activity counts produced by the core model and
 * consumed by the power model. All counts are event totals over
 * `cycles` core cycles.
 */
struct ActivitySample
{
    /** Core cycles in the interval. */
    std::uint64_t cycles = 0;
    /** Micro-ops fetched. */
    std::uint64_t fetched = 0;
    /** Micro-ops dispatched (decode/rename). */
    std::uint64_t dispatched = 0;
    /** Micro-ops issued to any FU. */
    std::uint64_t issued = 0;
    /** Micro-ops committed. */
    std::uint64_t committed = 0;
    /** Integer-unit operations executed. */
    std::uint64_t fxuOps = 0;
    /** Floating-point operations executed. */
    std::uint64_t fpuOps = 0;
    /** Load/store operations executed. */
    std::uint64_t lsuOps = 0;
    /** Conditional branches executed. */
    std::uint64_t branches = 0;
    /** L1 I-cache accesses. */
    std::uint64_t l1iAccesses = 0;
    /** L1 D-cache accesses. */
    std::uint64_t l1dAccesses = 0;
    /** L2 accesses from this core (L1 misses). */
    std::uint64_t l2Accesses = 0;
    /** L2 misses from this core (memory accesses). */
    std::uint64_t l2Misses = 0;

    /** Accumulate another sample into this one. */
    void merge(const ActivitySample &o);

    /** Reset all counts. */
    void reset();
};

/**
 * Static parameters of the core power model: per-unit maximum power
 * at the nominal (Turbo) point, per-unit ungated fractions, issue
 * widths used to normalize utilization, and leakage.
 */
struct CorePowerParams
{
    /** Per-unit maximum power at Turbo [W]. */
    std::array<Watts, numUnits> unitMaxW;
    /** Per-unit fraction consumed when idle (imperfect gating). */
    std::array<double, numUnits> ungated;
    /** Per-unit events-per-cycle corresponding to 100% utilization. */
    std::array<double, numUnits> fullRate;
    /** Core leakage power at nominal Vdd [W] (scales with vScale). */
    Watts leakageW;

    /** POWER4/5-class defaults calibrated for this study. */
    static CorePowerParams classic();

    /** Sum of unitMaxW + leakage: peak core power at Turbo [W]. */
    Watts peakW() const;
};

/**
 * Computes per-interval core energy from an ActivitySample at a given
 * DVFS operating point.
 */
class CorePowerModel
{
  public:
    /** Build from parameters and the DVFS table in force. */
    CorePowerModel(CorePowerParams params, const DvfsTable &dvfs);

    /**
     * Energy consumed over @p s at mode @p m [J]. The interval length
     * is s.cycles at the mode's frequency.
     */
    Joules energy(const ActivitySample &s, PowerMode m) const;

    /** Average power over @p s at mode @p m [W]. */
    Watts power(const ActivitySample &s, PowerMode m) const;

    /**
     * Power consumed while the core is stalled for a DVFS transition
     * at (departing) mode @p m: clock-tree + ungated + leakage [W].
     */
    Watts stallPower(PowerMode m) const;

    /** Peak single-core power at Turbo [W]. */
    Watts peakW() const { return params.peakW(); }

    /** Model parameters. */
    const CorePowerParams &parameters() const { return params; }

  private:
    /** Per-unit utilization of @p u in sample @p s, in [0, 1]. */
    double utilization(const ActivitySample &s, Unit u) const;

    CorePowerParams params;
    const DvfsTable &dvfs;
};

/**
 * Power of the shared uncore (L2 + bus + memory controller), in its
 * own fixed clock/voltage domain: a constant component plus per-access
 * and per-miss energies.
 */
class UncorePowerModel
{
  public:
    /** Parameters of the uncore power model. */
    struct Params
    {
        /** Constant (leakage + clock) power [W]. */
        Watts baseW = 1.8;
        /** Energy per L2 access [J]. */
        Joules l2AccessJ = 1.2e-9;
        /** Energy per off-chip memory access [J]. */
        Joules memAccessJ = 6.0e-9;
    };

    UncorePowerModel();
    explicit UncorePowerModel(Params p);

    /**
     * Energy over an interval of @p seconds wall-clock time with the
     * given total L2 traffic [J].
     */
    Joules energy(double seconds, std::uint64_t l2_accesses,
                  std::uint64_t l2_misses) const;

    /** Constant uncore power floor [W]. */
    Watts baseW() const { return params.baseW; }

  private:
    Params params;
};

} // namespace gpm

#endif // GPM_POWER_POWER_MODEL_HH
