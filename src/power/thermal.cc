#include "thermal.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gpm
{

ThermalNode::ThermalNode(ThermalParams p)
    : prm(p), tempC(p.ambientC), peak(p.ambientC)
{
    GPM_ASSERT(p.rthKPerW > 0.0 && p.cthJPerK > 0.0);
}

double
ThermalNode::steadyStateC(Watts power_w) const
{
    return prm.ambientC + power_w * prm.rthKPerW;
}

void
ThermalNode::step(Watts power_w, MicroSec dt_us)
{
    GPM_ASSERT(dt_us >= 0.0);
    double target = steadyStateC(power_w);
    double alpha =
        std::exp(-(dt_us * 1e-6) / prm.tauSeconds());
    tempC = target + (tempC - target) * alpha;
    peak = std::max(peak, tempC);
}

void
ThermalNode::reset()
{
    tempC = prm.ambientC;
    peak = prm.ambientC;
}

ChipThermalModel::ChipThermalModel(std::size_t cores,
                                   ThermalParams p)
    : nodes(cores, ThermalNode(p))
{
    GPM_ASSERT(cores > 0);
}

void
ChipThermalModel::step(const std::vector<Watts> &core_power_w,
                       MicroSec dt_us)
{
    GPM_ASSERT(core_power_w.size() == nodes.size());
    for (std::size_t c = 0; c < nodes.size(); c++)
        nodes[c].step(core_power_w[c], dt_us);
}

double
ChipThermalModel::temperatureC(std::size_t c) const
{
    GPM_ASSERT(c < nodes.size());
    return nodes[c].temperatureC();
}

double
ChipThermalModel::hottestC() const
{
    double t = -1e300;
    for (const auto &n : nodes)
        t = std::max(t, n.temperatureC());
    return t;
}

double
ChipThermalModel::peakC() const
{
    double t = -1e300;
    for (const auto &n : nodes)
        t = std::max(t, n.peakC());
    return t;
}

} // namespace gpm
