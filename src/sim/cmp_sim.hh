/**
 * @file
 * The static, trace-based CMP power/performance analysis tool
 * (paper Section 3.1).
 *
 * N per-core ProfileCursors progress simultaneously through their
 * workloads in wall-clock time. Statistics update every
 * "delta sim time" (50 us); the global manager is invoked at every
 * "explore time" (500 us) and its mode directives are applied
 * simultaneously at all cores. When any core changes mode, all cores
 * stall for the longest transition among them (conservative
 * synchronization, Section 5.1), with CPU power still consumed.
 *
 * Termination follows the paper: the run ends when the first
 * benchmark completes, so all cores are utilized for the whole
 * experimented region. (All-done and fixed-time terminations are
 * also available.)
 *
 * An optional analytic contention model approximates shared-L2/bus
 * queueing by dilating per-core progress in proportion to the chip's
 * aggregate L2-miss traffic; the full-CMP model in uarch/cmp_system
 * is the reference for validating it.
 */

#ifndef GPM_SIM_CMP_SIM_HH
#define GPM_SIM_CMP_SIM_HH

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/global_manager.hh"
#include "power/dvfs.hh"
#include "power/power_model.hh"
#include "power/thermal.hh"
#include "sim/timeline.hh"
#include "trace/phase_profile.hh"
#include "util/units.hh"

namespace gpm
{

/** Tunable parameters of the trace-based CMP simulator. */
struct SimConfig
{
    /** Statistics update period [us]. */
    MicroSec deltaSimUs = 50.0;
    /** Global-manager invocation period [us]. */
    MicroSec exploreUs = 500.0;

    /** Run-termination conditions. */
    enum class Termination
    {
        FirstDone, ///< stop when the first benchmark completes
        AllDone,   ///< run until every benchmark completes
        FixedTime, ///< run exactly maxTimeUs
    };
    Termination termination = Termination::FirstDone;

    /** Hard wall-clock cap [us]. */
    MicroSec maxTimeUs = 10'000'000.0;

    /** Initial mode of every core. */
    PowerMode startMode = modes::Turbo;

    /** Stall all cores for the longest transition on mode changes. */
    bool stallDuringTransitions = true;

    /** Enable the analytic shared-L2/bus contention model. */
    bool contention = false;
    /** Bus service time per off-chip access [ns] (contention). */
    double busServiceNs = 4.0;

    /**
     * Phase-shift stride for many-core scenarios: core c starts its
     * workload at fraction frac(c * stride) of the instruction
     * stream and wraps around (see ProfileCursor::seekFraction), so
     * cores replicating the same profile still exercise different
     * phases at any instant. 0 disables (every core starts at the
     * beginning — the paper's original setup).
     */
    double phaseShiftStride = 0.0;

    /**
     * Base phase shift added to every core's stride shift: core c
     * starts at fraction frac(phaseShiftBase + c * phaseShiftStride).
     * The cluster layer uses it to start otherwise-identical chips
     * at different regions of the workload streams. 0 disables.
     */
    double phaseShiftBase = 0.0;

    /** Record a per-delta-step timeline (needed for the figures). */
    bool recordTimeline = true;

    /**
     * Relative 1-sigma noise applied to the power/BIPS samples the
     * local monitors report (Foxton-style current sensors are not
     * ideal). 0 disables. Noise is applied to measurements only;
     * the true energy/instruction accounting is unaffected.
     */
    double sensorNoise = 0.0;
    /** Seed for the sensor-noise stream. */
    std::uint64_t sensorNoiseSeed = 0x5eed;

    /** Track per-core junction temperatures (RC thermal model). */
    bool trackThermal = false;
    /** Thermal-node parameters when tracking is enabled. */
    ThermalParams thermal;
};

/** Outcome of one CmpSim run. */
struct SimResult
{
    /** Wall-clock length of the measured window [us]. */
    MicroSec endUs = 0.0;
    /** Instructions each core committed inside the window. */
    std::vector<double> coreInstructions;
    /** Core energy inside the window [J]. */
    std::vector<double> coreEnergyJ;
    /** Uncore (L2 + memory) energy [J]. */
    double uncoreEnergyJ = 0.0;
    /** Which cores finished their workload inside the window. */
    std::vector<bool> finished;
    /** Recorded timeline (empty when disabled). */
    Timeline timeline;
    /** Manager statistics (zero for static runs). */
    ManagerStats managerStats;
    /** Mean relative prediction errors (Section 5.5). */
    double predPowerError = 0.0;
    double predBipsError = 0.0;
    /** Peak junction temperature any core reached [C] (0 when
     *  thermal tracking is off). */
    double peakTempC = 0.0;

    /** Average total chip power (cores + uncore) [W]. */
    Watts avgChipPowerW() const;

    /**
     * Average core power over the window [W] — the budgeted
     * quantity: budgets constrain what DVFS can control.
     */
    Watts avgCorePowerW() const;

    /** Chip throughput: total instructions / window [BIPS]. */
    double chipBips() const;

    /** Per-core throughput over the window [BIPS]. */
    std::vector<double> coreBips() const;
};

/**
 * The trace-based CMP simulator. Bind profiles once; each run*()
 * call replays from the beginning (cursors are rewound).
 *
 * Thread-safety contract: run(), runStatic() and referencePowerW()
 * are safe to call concurrently on one instance. Every piece of
 * per-run state (cursors, accumulators, scratch buffers) lives on
 * the calling thread's stack; the members are either immutable after
 * construction (profiles, dvfs, cfg, power models) or synchronized
 * (the cached reference power, initialized under std::once_flag).
 */
class CmpSim
{
  public:
    /**
     * @param profiles one profile per core (must outlive the sim)
     * @param dvfs     mode table
     * @param cfg      simulator parameters
     */
    CmpSim(std::vector<const WorkloadProfile *> profiles,
           const DvfsTable &dvfs, SimConfig cfg = SimConfig{});

    /** Number of cores. */
    std::size_t numCores() const { return profs.size(); }

    /**
     * Dynamic-management run: the manager decides at t = 0 (from a
     * profile bootstrap) and at every explore time. The budget
     * schedule is expressed as fractions of @p reference_power_w
     * (total chip, cores + uncore).
     *
     * @param record_timeline overrides cfg.recordTimeline for this
     *        run (sweeps evaluate thousands of points whose
     *        timelines nobody reads)
     */
    SimResult run(GlobalManager &mgr, const BudgetSchedule &budget,
                  Watts reference_power_w,
                  std::optional<bool> record_timeline = std::nullopt);

    /** Fixed-mode run (static assignments, references, bounds). */
    SimResult
    runStatic(const std::vector<PowerMode> &modes,
              std::optional<bool> record_timeline = std::nullopt);

    /**
     * Average core power of the all-Turbo run — the reference
     * "maximum chip power" that budget fractions scale (cached).
     * Budgets are defined over core power, the quantity per-core
     * DVFS can control; uncore power is simulated and reported but
     * lies outside the budget (see DESIGN.md).
     */
    Watts referencePowerW();

  private:
    /** Shared inner loop; mgr may be null (static run). */
    SimResult runInternal(GlobalManager *mgr,
                          const BudgetSchedule *budget,
                          Watts reference_power_w,
                          const std::vector<PowerMode> &static_modes,
                          bool record_timeline);

    std::vector<const WorkloadProfile *> profs;
    const DvfsTable &dvfs;
    SimConfig cfg;
    CorePowerModel stallModel;
    UncorePowerModel uncore;
    /** Lazily computed all-Turbo core power; guarded by refOnce so
     *  concurrent referencePowerW() calls are race-free. */
    std::once_flag refOnce;
    Watts cachedRefW = 0.0;
};

} // namespace gpm

#endif // GPM_SIM_CMP_SIM_HH
