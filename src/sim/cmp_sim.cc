#include "cmp_sim.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gpm
{

Watts
SimResult::avgChipPowerW() const
{
    if (endUs <= 0.0)
        return 0.0;
    double e = uncoreEnergyJ;
    for (double c : coreEnergyJ)
        e += c;
    return e / (endUs * 1e-6);
}

Watts
SimResult::avgCorePowerW() const
{
    if (endUs <= 0.0)
        return 0.0;
    double e = 0.0;
    for (double c : coreEnergyJ)
        e += c;
    return e / (endUs * 1e-6);
}

double
SimResult::chipBips() const
{
    if (endUs <= 0.0)
        return 0.0;
    double insts = 0.0;
    for (double c : coreInstructions)
        insts += c;
    return insts / (endUs * 1000.0);
}

std::vector<double>
SimResult::coreBips() const
{
    std::vector<double> b(coreInstructions.size(), 0.0);
    if (endUs <= 0.0)
        return b;
    for (std::size_t c = 0; c < b.size(); c++)
        b[c] = coreInstructions[c] / (endUs * 1000.0);
    return b;
}

CmpSim::CmpSim(std::vector<const WorkloadProfile *> profiles,
               const DvfsTable &dvfs_, SimConfig cfg_)
    : profs(std::move(profiles)), dvfs(dvfs_), cfg(cfg_),
      stallModel(CorePowerParams::classic(), dvfs_), uncore()
{
    if (profs.empty())
        fatal("CmpSim requires at least one core");
    for (const auto *p : profs) {
        GPM_ASSERT(p != nullptr);
        GPM_ASSERT(p->modes.size() == dvfs.numModes());
    }
    if (cfg.deltaSimUs <= 0.0 || cfg.exploreUs < cfg.deltaSimUs)
        fatal("CmpSim: need 0 < deltaSimUs <= exploreUs");
}

SimResult
CmpSim::run(GlobalManager &mgr, const BudgetSchedule &budget,
            Watts reference_power_w,
            std::optional<bool> record_timeline)
{
    return runInternal(&mgr, &budget, reference_power_w, {},
                       record_timeline.value_or(cfg.recordTimeline));
}

SimResult
CmpSim::runStatic(const std::vector<PowerMode> &modes,
                  std::optional<bool> record_timeline)
{
    GPM_ASSERT(modes.size() == profs.size());
    return runInternal(nullptr, nullptr, 0.0, modes,
                       record_timeline.value_or(cfg.recordTimeline));
}

Watts
CmpSim::referencePowerW()
{
    // call_once makes the lazy init safe under concurrent sweeps
    // (the old "if (cachedRefW < 0) cachedRefW = ..." was a race).
    std::call_once(refOnce, [this] {
        std::vector<PowerMode> all_turbo(profs.size(), modes::Turbo);
        cachedRefW = runStatic(all_turbo, false).avgCorePowerW();
    });
    return cachedRefW;
}

SimResult
CmpSim::runInternal(GlobalManager *mgr, const BudgetSchedule *budget,
                    Watts reference_power_w,
                    const std::vector<PowerMode> &static_modes,
                    bool record_timeline)
{
    const std::size_t n = profs.size();

    // Every container this run touches is sized here, once. The
    // delta-step loop below performs no heap allocation in steady
    // state: the only allocating operations left are per *explore*
    // interval (the manager's returned mode vector and the optional
    // oracle matrix, at 1/10th the delta rate) and the amortized
    // geometric growth of the flat timeline arrays when recording.
    std::vector<ProfileCursor> cursors;
    cursors.reserve(n);
    for (const auto *p : profs)
        cursors.emplace_back(*p);
    if (cfg.phaseShiftStride > 0.0 || cfg.phaseShiftBase > 0.0) {
        for (std::size_t c = 0; c < n; c++) {
            double f = cfg.phaseShiftBase +
                static_cast<double>(c) * cfg.phaseShiftStride;
            cursors[c].seekFraction(f - std::floor(f));
        }
    }

    std::vector<PowerMode> mode_v =
        mgr ? std::vector<PowerMode>(n, cfg.startMode) : static_modes;

    struct Acc
    {
        double energyJ = 0.0;
        double insts = 0.0;
        double misses = 0.0;
        double accesses = 0.0;
    };
    std::vector<Acc> explore_acc(n);
    MicroSec explore_elapsed = 0.0;

    // Scratch buffers reused across iterations.
    std::vector<CoreSample> samples(n);
    std::vector<double> stall_energy(n, 0.0);
    std::vector<double> dilation(n, 1.0);
    std::vector<double> step_bips(n, 0.0);

    std::vector<Watts> last_step_power(n, 0.0);
    for (std::size_t c = 0; c < n; c++)
        last_step_power[c] = stallModel.stallPower(mode_v[c]);
    std::vector<double> last_miss_rate(n, 0.0); // misses per us

    SimResult res;
    res.coreInstructions.assign(n, 0.0);
    res.coreEnergyJ.assign(n, 0.0);
    res.finished.assign(n, false);
    if (record_timeline) {
        res.timeline.start(n);
        res.timeline.reserve(256);
    }

    ChipThermalModel thermal(n, cfg.thermal);

    MicroSec t = 0.0;
    MicroSec next_explore = 0.0;
    bool first_decision = true;
    Rng sensor_rng(cfg.sensorNoiseSeed);
    auto noisy = [&](double v) {
        if (cfg.sensorNoise <= 0.0)
            return v;
        return v * std::max(
            0.0, 1.0 + sensor_rng.gaussian(0.0, cfg.sensorNoise));
    };

    auto bips_of = [](double insts, MicroSec us) {
        return us > 0.0 ? insts / (us * 1000.0) : 0.0;
    };

    // Future-exact matrices for the oracle policy: evaluate the next
    // explore interval at every mode directly from the profiles,
    // discounting BIPS for the transition the switch would incur.
    auto build_oracle = [&]() {
        ModeMatrix om(n, dvfs.numModes());
        for (std::size_t c = 0; c < n; c++) {
            for (std::size_t mi = 0; mi < dvfs.numModes(); mi++) {
                auto m = static_cast<PowerMode>(mi);
                auto d = cursors[c].peek(cfg.exploreUs, m);
                if (d.usedUs <= 0.0) {
                    om.powerW(c, m) = stallModel.stallPower(m);
                    om.bips(c, m) = 0.0;
                    continue;
                }
                om.powerW(c, m) = d.energyJ / (d.usedUs * 1e-6);
                double tf = 1.0;
                if (m != mode_v[c]) {
                    MicroSec tr = dvfs.transitionUs(mode_v[c], m);
                    tf = cfg.exploreUs / (cfg.exploreUs + tr);
                }
                om.bips(c, m) =
                    bips_of(d.instructions, cfg.exploreUs) * tf;
            }
        }
        return om;
    };

    while (t < cfg.maxTimeUs) {
        // ---- Explore boundary: consult the global manager --------
        if (mgr && t + 1e-6 >= next_explore) {
            for (std::size_t c = 0; c < n; c++) {
                CoreSample &s = samples[c];
                s = CoreSample{};
                s.mode = mode_v[c];
                s.active = !res.finished[c];
                if (first_decision) {
                    // Bootstrap from the profiles: the trace-based
                    // tool knows the first interval's behaviour.
                    auto d = cursors[c].peek(cfg.exploreUs, mode_v[c]);
                    if (d.usedUs > 0.0) {
                        s.powerW = d.energyJ / (d.usedUs * 1e-6);
                        s.bips = bips_of(d.instructions, d.usedUs);
                        s.memIntensity = d.l2Misses / d.usedUs;
                    } else {
                        s.active = false;
                        s.powerW = stallModel.stallPower(mode_v[c]);
                    }
                } else {
                    const Acc &a = explore_acc[c];
                    s.powerW = noisy(
                        explore_elapsed > 0.0
                            ? a.energyJ / (explore_elapsed * 1e-6)
                            : 0.0);
                    s.bips =
                        noisy(bips_of(a.insts, explore_elapsed));
                    s.memIntensity = explore_elapsed > 0.0
                        ? a.misses / explore_elapsed
                        : 0.0;
                }
            }

            ModeMatrix oracle_m(1, 1);
            const ModeMatrix *oracle_p = nullptr;
            if (mgr->wantsOracle()) {
                oracle_m = build_oracle();
                oracle_p = &oracle_m;
            }

            Watts core_budget = budget->at(t) * reference_power_w;
            std::vector<PowerMode> new_modes =
                mgr->atExplore(samples, core_budget, oracle_p);

            // Apply transitions: all cores stall for the longest
            // per-core transition; CPU power is still consumed.
            MicroSec stalled_us = 0.0;
            std::fill(stall_energy.begin(), stall_energy.end(), 0.0);
            if (!first_decision && cfg.stallDuringTransitions) {
                MicroSec trans = 0.0;
                for (std::size_t c = 0; c < n; c++)
                    if (new_modes[c] != mode_v[c])
                        trans = std::max(
                            trans,
                            dvfs.transitionUs(mode_v[c],
                                              new_modes[c]));
                if (trans > 0.0) {
                    for (std::size_t c = 0; c < n; c++) {
                        double e =
                            last_step_power[c] * trans * 1e-6;
                        res.coreEnergyJ[c] += e;
                        stall_energy[c] = e;
                    }
                    res.uncoreEnergyJ +=
                        uncore.baseW() * trans * 1e-6;
                    t += trans;
                    stalled_us = trans;
                }
            }
            mode_v = new_modes;
            first_decision = false;
            explore_acc.assign(n, Acc{});
            explore_elapsed = 0.0;
            if (stalled_us > 0.0) {
                // The stall belongs to the interval being predicted:
                // predictions discount BIPS by explore/(explore+t),
                // so the measurement window must include the stall.
                explore_elapsed = stalled_us;
                for (std::size_t c = 0; c < n; c++)
                    explore_acc[c].energyJ = stall_energy[c];
            }
            next_explore = t + cfg.exploreUs;
        }

        // ---- One delta-sim interval -------------------------------
        const MicroSec dt = cfg.deltaSimUs;

        if (cfg.contention) {
            double rho = 0.0;
            for (double r : last_miss_rate)
                rho += r * cfg.busServiceNs / 1000.0;
            rho = std::min(rho, 0.95);
            double wait_ns =
                cfg.busServiceNs * rho / (1.0 - rho);
            for (std::size_t c = 0; c < n; c++)
                dilation[c] =
                    1.0 + last_miss_rate[c] * wait_ns / 1000.0;
        }

        const MicroSec step_t_us = t;
        double step_misses = 0.0;
        double step_accesses = 0.0;
        bool finished_now = false;
        Watts step_core_power = 0.0;

        for (std::size_t c = 0; c < n; c++) {
            double step_energy = 0.0;
            double step_insts = 0.0;
            if (!res.finished[c]) {
                auto d = cursors[c].advance(dt, mode_v[c],
                                            dilation[c]);
                step_energy = d.energyJ;
                step_insts = d.instructions;
                explore_acc[c].insts += d.instructions;
                explore_acc[c].misses += d.l2Misses;
                explore_acc[c].accesses += d.l2Accesses;
                step_misses += d.l2Misses;
                step_accesses += d.l2Accesses;
                last_miss_rate[c] = d.l2Misses / dt;
                if (d.finished) {
                    res.finished[c] = true;
                    finished_now = true;
                    double idle_us = dt - d.usedUs;
                    step_energy += stallModel.stallPower(mode_v[c]) *
                        idle_us * 1e-6;
                }
            } else {
                step_energy =
                    stallModel.stallPower(mode_v[c]) * dt * 1e-6;
                last_miss_rate[c] = 0.0;
            }
            res.coreEnergyJ[c] += step_energy;
            res.coreInstructions[c] += step_insts;
            explore_acc[c].energyJ += step_energy;
            last_step_power[c] = step_energy / (dt * 1e-6);
            step_core_power += last_step_power[c];
            step_bips[c] = bips_of(step_insts, dt);
        }

        double unc_e = uncore.energy(
            dt * 1e-6,
            static_cast<std::uint64_t>(step_accesses + 0.5),
            static_cast<std::uint64_t>(step_misses + 0.5));
        res.uncoreEnergyJ += unc_e;

        if (cfg.trackThermal)
            thermal.step(last_step_power, dt);

        if (record_timeline) {
            res.timeline.append(
                step_t_us, last_step_power, step_bips, mode_v,
                step_core_power,
                budget ? budget->at(step_t_us) * reference_power_w
                       : 0.0,
                cfg.trackThermal ? thermal.hottestC() : 0.0);
        }

        t += dt;
        explore_elapsed += dt;

        if (cfg.termination == SimConfig::Termination::FirstDone &&
            finished_now)
            break;
        if (cfg.termination == SimConfig::Termination::AllDone) {
            bool all = true;
            for (bool f : res.finished)
                all = all && f;
            if (all)
                break;
        }
    }

    res.endUs = t;
    if (cfg.trackThermal)
        res.peakTempC = thermal.peakC();
    if (mgr) {
        res.managerStats = mgr->stats();
        res.predPowerError = mgr->predictor().meanPowerError();
        res.predBipsError = mgr->predictor().meanBipsError();
    }
    return res;
}

} // namespace gpm
