/**
 * @file
 * Structure-of-arrays storage for the per-delta-step timeline a
 * CmpSim run records.
 *
 * The previous representation (std::vector of points, each holding
 * three per-core vectors) heap-allocated several times per 50 us
 * delta step, which dominated the hot loop once the simulation
 * itself was made allocation-free. Timeline keeps one flat, packed
 * array per field; appending a step copies into the flat arrays and
 * allocates only on amortized geometric growth.
 *
 * TimelinePoint is a cheap *view* into one step: scalars by value,
 * per-core series as std::span. Consumers keep the familiar
 * `tp.corePowerW[c]` / `for (auto m : tp.modes)` syntax.
 */

#ifndef GPM_SIM_TIMELINE_HH
#define GPM_SIM_TIMELINE_HH

#include <cstddef>
#include <iterator>
#include <span>
#include <vector>

#include "power/dvfs.hh"
#include "util/units.hh"

namespace gpm
{

/** View of one recorded delta-sim interval. */
struct TimelinePoint
{
    /** Interval start time [us]. */
    MicroSec tUs = 0.0;
    /** Per-core average power over the interval [W]. */
    std::span<const Watts> corePowerW;
    /** Per-core throughput over the interval [BIPS]. */
    std::span<const double> coreBips;
    /** Per-core mode during the interval. */
    std::span<const PowerMode> modes;
    /** Total core power (the budgeted quantity) [W]. */
    Watts totalPowerW = 0.0;
    /** Core-power budget in force [W]. */
    Watts budgetW = 0.0;
    /** Hottest core temperature at interval end [C] (0 when
     *  thermal tracking is off). */
    double hottestC = 0.0;
};

/** Packed per-field storage of a whole run's timeline. */
class Timeline
{
  public:
    /** Reset to an empty timeline of @p cores-wide steps. */
    void start(std::size_t cores);

    /** Record one step; the spans must be cores() wide. */
    void append(MicroSec t_us, std::span<const Watts> core_power_w,
                std::span<const double> core_bips,
                std::span<const PowerMode> modes, Watts total_w,
                Watts budget_w, double hottest_c);

    /** Number of cores per step. */
    std::size_t cores() const { return cores_; }

    /** Number of recorded steps. */
    std::size_t size() const { return tUs_.size(); }

    bool empty() const { return tUs_.empty(); }

    /** Pre-size for @p steps recorded steps. */
    void reserve(std::size_t steps);

    /** View of step @p i. */
    TimelinePoint operator[](std::size_t i) const;

    /** Forward iteration yielding TimelinePoint views. */
    class const_iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = TimelinePoint;
        using difference_type = std::ptrdiff_t;
        using pointer = const TimelinePoint *;
        using reference = TimelinePoint;

        const_iterator(const Timeline *tl, std::size_t i)
            : tl(tl), i(i)
        {
        }
        TimelinePoint operator*() const { return (*tl)[i]; }
        const_iterator &operator++()
        {
            i++;
            return *this;
        }
        const_iterator operator++(int)
        {
            const_iterator old = *this;
            i++;
            return old;
        }
        bool operator==(const const_iterator &o) const
        {
            return tl == o.tl && i == o.i;
        }
        bool operator!=(const const_iterator &o) const
        {
            return !(*this == o);
        }

      private:
        const Timeline *tl;
        std::size_t i;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size()}; }

  private:
    std::size_t cores_ = 0;
    std::vector<MicroSec> tUs_;
    std::vector<Watts> corePowerW_;
    std::vector<double> coreBips_;
    std::vector<PowerMode> modes_;
    std::vector<Watts> totalPowerW_;
    std::vector<Watts> budgetW_;
    std::vector<double> hottestC_;
};

} // namespace gpm

#endif // GPM_SIM_TIMELINE_HH
