#include "timeline.hh"

#include "util/logging.hh"

namespace gpm
{

void
Timeline::start(std::size_t cores)
{
    cores_ = cores;
    tUs_.clear();
    corePowerW_.clear();
    coreBips_.clear();
    modes_.clear();
    totalPowerW_.clear();
    budgetW_.clear();
    hottestC_.clear();
}

void
Timeline::reserve(std::size_t steps)
{
    tUs_.reserve(steps);
    corePowerW_.reserve(steps * cores_);
    coreBips_.reserve(steps * cores_);
    modes_.reserve(steps * cores_);
    totalPowerW_.reserve(steps);
    budgetW_.reserve(steps);
    hottestC_.reserve(steps);
}

void
Timeline::append(MicroSec t_us, std::span<const Watts> core_power_w,
                 std::span<const double> core_bips,
                 std::span<const PowerMode> modes, Watts total_w,
                 Watts budget_w, double hottest_c)
{
    GPM_ASSERT(core_power_w.size() == cores_ &&
               core_bips.size() == cores_ && modes.size() == cores_);
    tUs_.push_back(t_us);
    corePowerW_.insert(corePowerW_.end(), core_power_w.begin(),
                       core_power_w.end());
    coreBips_.insert(coreBips_.end(), core_bips.begin(),
                     core_bips.end());
    modes_.insert(modes_.end(), modes.begin(), modes.end());
    totalPowerW_.push_back(total_w);
    budgetW_.push_back(budget_w);
    hottestC_.push_back(hottest_c);
}

TimelinePoint
Timeline::operator[](std::size_t i) const
{
    GPM_ASSERT(i < size());
    TimelinePoint tp;
    tp.tUs = tUs_[i];
    tp.corePowerW = {corePowerW_.data() + i * cores_, cores_};
    tp.coreBips = {coreBips_.data() + i * cores_, cores_};
    tp.modes = {modes_.data() + i * cores_, cores_};
    tp.totalPowerW = totalPowerW_[i];
    tp.budgetW = budgetW_[i];
    tp.hottestC = hottestC_[i];
    return tp;
}

} // namespace gpm
