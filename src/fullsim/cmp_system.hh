/**
 * @file
 * Full-CMP cycle-level configuration (paper Section 3.1, "a
 * cycle-accurate full-CMP implementation of Turandot ... where we add
 * time driven L2 and thread synchronization to manage multiple clock
 * domain modes"). N detailed cores, each in its own clock domain,
 * share one L2 behind an arbitrated bus. Cores advance in small
 * global-time quanta so cross-core L2 interleaving approximates true
 * time order. Supports per-core dynamic DVFS driven by a
 * GlobalManager, and is the validation reference for the fast
 * trace-based CmpSim.
 */

#ifndef GPM_FULLSIM_CMP_SYSTEM_HH
#define GPM_FULLSIM_CMP_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "core/global_manager.hh"
#include "fullsim/dram.hh"
#include "fullsim/shared_l2.hh"
#include "power/dvfs.hh"
#include "power/power_model.hh"
#include "trace/synth_generator.hh"
#include "trace/workload.hh"
#include "uarch/core.hh"
#include "uarch/memory.hh"
#include "util/units.hh"

namespace gpm
{

/** Configuration of a full-CMP run. */
struct FullSimConfig
{
    /** Global synchronization quantum [us]. */
    MicroSec quantumUs = 1.0;
    /** Manager invocation period [us]; 0 disables management. */
    MicroSec exploreUs = 500.0;
    /** Stop when the first workload completes. */
    bool stopOnFirstDone = true;
    /** Hard wall-clock cap [us]. */
    MicroSec maxTimeUs = 1'000'000.0;
    /** Workload length scale (tests/validation use < 1). */
    double lengthScale = 1.0;
    /** Initial mode of every core. */
    PowerMode startMode = modes::Turbo;
    /** Bus occupancy per L2 request [ns]. */
    double busServiceNs = 4.0;
    /**
     * Model memory as banked open-row DRAM instead of the flat
     * Table 1 latency (bank conflicts become visible). Off by
     * default so the Section 3.1 comparison against the trace-based
     * tool isolates *sharing* effects.
     */
    bool useDram = false;
    /** DRAM parameters when useDram is set. */
    DramParams dram;
};

/** Summary of a full-CMP run (per core and chip). */
struct FullSimResult
{
    MicroSec endUs = 0.0;
    std::vector<double> coreInstructions;
    std::vector<double> coreEnergyJ;
    std::vector<double> coreIpc;   ///< at each core's own clock
    std::vector<double> coreBips;  ///< over the common window
    std::vector<std::uint64_t> coreL2Accesses;
    std::vector<std::uint64_t> coreL2Misses;
    double avgBusQueueNs = 0.0;

    /** Average total core power [W]. */
    Watts avgCorePowerW() const;

    /** Chip throughput over the window [BIPS]. */
    double chipBips() const;
};

/**
 * The full-CMP machine: construction wires up generators, private
 * L1s, the shared L2 and the cores; run() executes one experiment.
 * Single-use: construct a fresh instance per run.
 */
class CmpSystem
{
  public:
    /**
     * @param workload_names one suite workload per core
     * @param dvfs           mode table
     * @param cfg            run configuration
     */
    CmpSystem(const std::vector<std::string> &workload_names,
              const DvfsTable &dvfs, FullSimConfig cfg = {});

    ~CmpSystem();

    CmpSystem(const CmpSystem &) = delete;
    CmpSystem &operator=(const CmpSystem &) = delete;

    /**
     * Run with fixed per-core modes (no manager).
     */
    FullSimResult runStatic(const std::vector<PowerMode> &modes);

    /**
     * Run under a global manager and budget schedule; the budget is
     * a fraction of @p reference_power_w (core power).
     */
    FullSimResult run(GlobalManager &mgr,
                      const BudgetSchedule &budget,
                      Watts reference_power_w);

    /** Number of cores. */
    std::size_t numCores() const { return cores.size(); }

    /** The shared L2 (statistics access). */
    const SharedL2 &sharedL2() const { return *l2; }

  private:
    struct PerCore;

    FullSimResult runInternal(GlobalManager *mgr,
                              const BudgetSchedule *budget,
                              Watts reference_power_w,
                              std::vector<PowerMode> mode_v);

    const DvfsTable &dvfs;
    FullSimConfig cfg;
    CoreConfig coreCfg;
    CorePowerModel power;
    std::unique_ptr<SharedL2> l2;
    std::vector<std::unique_ptr<PerCore>> cores;
};

} // namespace gpm

#endif // GPM_FULLSIM_CMP_SYSTEM_HH
