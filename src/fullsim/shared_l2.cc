#include "shared_l2.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpm
{

SharedL2::SharedL2(const CoreConfig &cfg, std::uint32_t num_cores,
                   double bus_service_ns, double window_ns)
    : l2(cfg.l2), l2LatNs(cfg.l2LatNs), memLatNs(cfg.memLatNs),
      busServiceNs(bus_service_ns), windowNs(window_ns),
      bus(window_ns), perCore(num_cores)
{
    GPM_ASSERT(num_cores > 0);
    GPM_ASSERT(window_ns > 0.0);
}

void
SharedL2::enableDram(DramParams p)
{
    p.windowNs = windowNs;
    dramModel = std::make_unique<DramModel>(p);
}

L2Outcome
SharedL2::access(std::uint32_t core_id, std::uint64_t addr,
                 bool is_write, double time_ns)
{
    GPM_ASSERT(core_id < perCore.size());
    CoreTraffic &tr = perCore[core_id];
    tr.accesses++;

    // Bus arbitration: windowed backlog accounting (see
    // WindowedQueue) keeps results independent of the order cores
    // simulate their quanta.
    double queue = bus.enqueue(time_ns, busServiceNs);
    tr.queueNs += queue;

    auto r = l2.access(addr, is_write);
    if (r.hit)
        return {queue + l2LatNs, false};
    tr.misses++;
    if (dramModel) {
        double lat =
            dramModel->access(addr, time_ns + queue + l2LatNs);
        return {queue + l2LatNs + lat, true};
    }
    return {queue + memLatNs, true};
}

const SharedL2::CoreTraffic &
SharedL2::traffic(std::uint32_t core_id) const
{
    GPM_ASSERT(core_id < perCore.size());
    return perCore[core_id];
}

double
SharedL2::avgQueueNs() const
{
    std::uint64_t acc = 0;
    double q = 0.0;
    for (const auto &tr : perCore) {
        acc += tr.accesses;
        q += tr.queueNs;
    }
    return acc ? q / static_cast<double>(acc) : 0.0;
}

} // namespace gpm
