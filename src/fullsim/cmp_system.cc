#include "cmp_system.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gpm
{

Watts
FullSimResult::avgCorePowerW() const
{
    if (endUs <= 0.0)
        return 0.0;
    double e = 0.0;
    for (double c : coreEnergyJ)
        e += c;
    return e / (endUs * 1e-6);
}

double
FullSimResult::chipBips() const
{
    if (endUs <= 0.0)
        return 0.0;
    double insts = 0.0;
    for (double c : coreInstructions)
        insts += c;
    return insts / (endUs * 1000.0);
}

/** Everything owned per core, in construction order. */
struct CmpSystem::PerCore
{
    PerCore(const WorkloadSpec &spec, double length_scale,
            const CoreConfig &ccfg, SharedL2 &l2,
            std::uint32_t core_id, Hertz freq)
        : gen(spec, length_scale), mem(ccfg, l2, core_id),
          core(ccfg, mem, gen, freq)
    {
    }

    SynthGenerator gen;
    MemorySystem mem;
    OooCore core;

    bool done = false;
    double energyJ = 0.0;
    double instructions = 0.0;
    std::uint64_t cycles = 0;
    // Explore-window accumulators.
    double winEnergyJ = 0.0;
    double winInsts = 0.0;
    std::uint64_t winMisses = 0;
};

CmpSystem::CmpSystem(const std::vector<std::string> &workload_names,
                     const DvfsTable &dvfs_, FullSimConfig cfg_)
    : dvfs(dvfs_), cfg(cfg_), coreCfg(),
      power(CorePowerParams::classic(), dvfs_),
      l2(std::make_unique<SharedL2>(
          coreCfg, static_cast<std::uint32_t>(workload_names.size()),
          cfg_.busServiceNs, cfg_.quantumUs * 1000.0))
{
    if (workload_names.empty())
        fatal("CmpSystem requires at least one core");
    if (cfg.useDram)
        l2->enableDram(cfg.dram);
    for (std::size_t c = 0; c < workload_names.size(); c++) {
        cores.push_back(std::make_unique<PerCore>(
            workload(workload_names[c]), cfg.lengthScale, coreCfg,
            *l2, static_cast<std::uint32_t>(c),
            dvfs.frequency(cfg.startMode)));
    }
}

CmpSystem::~CmpSystem() = default;

FullSimResult
CmpSystem::runStatic(const std::vector<PowerMode> &modes)
{
    GPM_ASSERT(modes.size() == cores.size());
    return runInternal(nullptr, nullptr, 0.0, modes);
}

FullSimResult
CmpSystem::run(GlobalManager &mgr, const BudgetSchedule &budget,
               Watts reference_power_w)
{
    return runInternal(
        &mgr, &budget, reference_power_w,
        std::vector<PowerMode>(cores.size(), cfg.startMode));
}

FullSimResult
CmpSystem::runInternal(GlobalManager *mgr,
                       const BudgetSchedule *budget,
                       Watts reference_power_w,
                       std::vector<PowerMode> mode_v)
{
    const std::size_t n = cores.size();
    for (std::size_t c = 0; c < n; c++)
        cores[c]->core.setFrequency(dvfs.frequency(mode_v[c]));

    MicroSec t = 0.0;
    MicroSec window_start = 0.0;
    MicroSec next_explore = cfg.exploreUs;
    std::size_t rotate = 0;
    bool stop = false;

    auto us2ps = [](MicroSec us) {
        return static_cast<std::uint64_t>(us * 1e6 + 0.5);
    };

    while (t < cfg.maxTimeUs && !stop) {
        MicroSec target = t + cfg.quantumUs;

        for (std::size_t i = 0; i < n; i++) {
            // Rotate service order per quantum so no core is
            // systematically simulated (and arbitrated) last.
            std::size_t c = (i + rotate) % n;
            PerCore &pc = *cores[c];
            if (pc.done)
                continue;
            CoreRunResult r = pc.core.runUntilPs(us2ps(target));
            Joules e = power.energy(r.activity, mode_v[c]);
            pc.energyJ += e;
            pc.winEnergyJ += e;
            pc.instructions += static_cast<double>(r.instructions);
            pc.winInsts += static_cast<double>(r.instructions);
            pc.cycles += r.activity.cycles;
            pc.winMisses += r.activity.l2Misses;
            if (r.streamEnded) {
                pc.done = true;
                if (cfg.stopOnFirstDone)
                    stop = true;
            }
        }
        rotate = (rotate + 1) % n;
        t = target;

        // ---- Explore boundary ------------------------------------
        if (mgr && cfg.exploreUs > 0.0 && t + 1e-9 >= next_explore &&
            !stop) {
            MicroSec win = t - window_start;
            std::vector<CoreSample> samples(n);
            for (std::size_t c = 0; c < n; c++) {
                PerCore &pc = *cores[c];
                CoreSample &s = samples[c];
                s.mode = mode_v[c];
                s.active = !pc.done;
                s.powerW =
                    win > 0.0 ? pc.winEnergyJ / (win * 1e-6) : 0.0;
                s.bips =
                    win > 0.0 ? pc.winInsts / (win * 1000.0) : 0.0;
                s.memIntensity = win > 0.0
                    ? static_cast<double>(pc.winMisses) / win
                    : 0.0;
            }
            Watts core_budget = budget->at(t) * reference_power_w;
            std::vector<PowerMode> new_modes =
                mgr->atExplore(samples, core_budget, nullptr);

            // Longest transition stalls every core; power is still
            // consumed at the (old) operating point.
            MicroSec trans = 0.0;
            for (std::size_t c = 0; c < n; c++)
                if (new_modes[c] != mode_v[c])
                    trans = std::max(trans,
                                     dvfs.transitionUs(mode_v[c],
                                                       new_modes[c]));
            if (trans > 0.0) {
                std::uint64_t stall_end = us2ps(t + trans);
                for (std::size_t c = 0; c < n; c++) {
                    PerCore &pc = *cores[c];
                    Joules e = power.stallPower(mode_v[c]) * trans *
                        1e-6;
                    pc.energyJ += e;
                    pc.winEnergyJ += e;
                    pc.core.stallUntilPs(stall_end);
                }
                t += trans;
            }
            for (std::size_t c = 0; c < n; c++) {
                if (new_modes[c] != mode_v[c]) {
                    cores[c]->core.setFrequency(
                        dvfs.frequency(new_modes[c]));
                    mode_v[c] = new_modes[c];
                }
                cores[c]->winEnergyJ = 0.0;
                cores[c]->winInsts = 0.0;
                cores[c]->winMisses = 0;
            }
            window_start = t;
            next_explore = t + cfg.exploreUs;
        }
    }

    FullSimResult res;
    res.endUs = t;
    for (std::size_t c = 0; c < n; c++) {
        PerCore &pc = *cores[c];
        res.coreInstructions.push_back(pc.instructions);
        res.coreEnergyJ.push_back(pc.energyJ);
        res.coreIpc.push_back(
            pc.cycles > 0
                ? pc.instructions / static_cast<double>(pc.cycles)
                : 0.0);
        res.coreBips.push_back(
            t > 0.0 ? pc.instructions / (t * 1000.0) : 0.0);
        res.coreL2Accesses.push_back(
            l2->traffic(static_cast<std::uint32_t>(c)).accesses);
        res.coreL2Misses.push_back(
            l2->traffic(static_cast<std::uint32_t>(c)).misses);
    }
    res.avgBusQueueNs = l2->avgQueueNs();
    return res;
}

} // namespace gpm
