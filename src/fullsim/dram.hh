/**
 * @file
 * Banked DRAM with open-row policy for the full-CMP configuration.
 *
 * The paper's Table 1 models memory as a flat 77-cycle latency; the
 * trace-based tool keeps that. This optional model refines the
 * full-CMP path: the physical address selects a bank, each bank
 * keeps one open row (row-buffer hit = CAS-only latency, miss =
 * precharge + activate + CAS), and each bank serializes its own
 * requests with the same windowed-backlog accounting the shared bus
 * uses (order-insensitive across the CMP synchronization quanta).
 * Multi-core interleavings close each other's rows — a contention
 * channel the flat model cannot express.
 */

#ifndef GPM_FULLSIM_DRAM_HH
#define GPM_FULLSIM_DRAM_HH

#include <cstdint>
#include <vector>

#include "util/units.hh"

namespace gpm
{

/**
 * Windowed backlog queue: accumulated service beyond the elapsed
 * window waits. Shared by the L2 bus and the DRAM banks so results
 * do not depend on the order cores simulate within a quantum.
 */
class WindowedQueue
{
  public:
    /** @param window_ns accounting window (sync quantum) [ns]. */
    explicit WindowedQueue(double window_ns = 1000.0);

    /**
     * Account one request of @p service_ns arriving at @p time_ns;
     * returns the queueing delay it suffers.
     */
    double enqueue(double time_ns, double service_ns);

  private:
    double windowNs;
    double windowStartNs = 0.0;
    double busyNs = 0.0;
};

/** DRAM device/timing parameters. */
struct DramParams
{
    /** Number of independent banks (power of two). */
    std::uint32_t banks = 8;
    /** Row-buffer hit latency (CAS) [ns]. */
    double rowHitNs = 40.0;
    /** Row-buffer miss latency (PRE + ACT + CAS) [ns]. */
    double rowMissNs = 95.0;
    /** Row size [bytes] (power of two). */
    std::uint32_t rowBytes = 2048;
    /** Per-request bank occupancy [ns]. */
    double bankServiceNs = 20.0;
    /** Backlog window (CMP sync quantum) [ns]. */
    double windowNs = 1000.0;
};

/** Banked open-row DRAM. */
class DramModel
{
  public:
    explicit DramModel(DramParams p = DramParams{});

    /**
     * Access the row containing @p addr at wall-clock @p time_ns.
     * @return total latency [ns] (bank queue + row hit/miss).
     */
    double access(std::uint64_t addr, double time_ns);

    /** Requests serviced. */
    std::uint64_t accesses() const { return nAccesses; }

    /** Row-buffer hits. */
    std::uint64_t rowHits() const { return nRowHits; }

    /** Row-buffer hit rate in [0, 1]. */
    double rowHitRate() const;

    /** Parameters in force. */
    const DramParams &params() const { return prm; }

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ULL;
        WindowedQueue queue;
        Bank(double window_ns) : queue(window_ns) {}
    };

    DramParams prm;
    std::vector<Bank> banks;
    std::uint64_t nAccesses = 0;
    std::uint64_t nRowHits = 0;
};

} // namespace gpm

#endif // GPM_FULLSIM_DRAM_HH
