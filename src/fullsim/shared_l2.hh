/**
 * @file
 * Shared L2 + bus model for the full-CMP configuration: one L2 tag
 * array shared by all cores (true capacity/conflict contention) with
 * a serializing bus in front of it (queueing contention). The L2 and
 * bus live in a fixed clock domain, so all times are nanoseconds.
 */

#ifndef GPM_FULLSIM_SHARED_L2_HH
#define GPM_FULLSIM_SHARED_L2_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "uarch/cache.hh"
#include "uarch/core_config.hh"
#include "fullsim/dram.hh"
#include "uarch/memory.hh"

namespace gpm
{

/**
 * Arbitrated shared L2 service. Requests occupy a bus with a fixed
 * per-request service time; a request arriving while the window's
 * accumulated service exceeds the elapsed window time waits for the
 * backlog. Backlog accounting is per time *window* (matched to the
 * CMP synchronization quantum) rather than a single free-time
 * cursor, so the result does not depend on the order in which cores
 * simulate their quanta — only on how much traffic each window
 * carries.
 */
class SharedL2 : public L2Service
{
  public:
    /** Per-core traffic statistics. */
    struct CoreTraffic
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        double queueNs = 0.0; ///< total bus-wait incurred
    };

    /**
     * @param cfg            L2 geometry and latencies (Table 1)
     * @param num_cores      cores sharing the L2
     * @param bus_service_ns bus occupancy per request [ns]
     * @param window_ns      backlog-accounting window [ns]; should
     *                       match the CMP synchronization quantum
     */
    SharedL2(const CoreConfig &cfg, std::uint32_t num_cores,
             double bus_service_ns = 4.0, double window_ns = 1000.0);

    /**
     * Route L2 misses through a banked open-row DRAM instead of the
     * flat Table 1 memory latency (window sizes should match).
     */
    void enableDram(DramParams p);

    /** The DRAM model, when enabled (null otherwise). */
    const DramModel *dram() const { return dramModel.get(); }

    L2Outcome access(std::uint32_t core_id, std::uint64_t addr,
                     bool is_write, double time_ns) override;

    /** Shared-cache statistics. */
    const CacheStats &cacheStats() const { return l2.stats(); }

    /** Per-core traffic seen at the L2. */
    const CoreTraffic &traffic(std::uint32_t core_id) const;

    /** Average bus queueing delay per request [ns]. */
    double avgQueueNs() const;

  private:
    Cache l2;
    double l2LatNs;
    double memLatNs;
    double busServiceNs;
    double windowNs;
    WindowedQueue bus;
    std::unique_ptr<DramModel> dramModel;
    std::vector<CoreTraffic> perCore;
};

} // namespace gpm

#endif // GPM_FULLSIM_SHARED_L2_HH
