#include "dram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpm
{

WindowedQueue::WindowedQueue(double window_ns)
    : windowNs(window_ns)
{
    GPM_ASSERT(window_ns > 0.0);
}

double
WindowedQueue::enqueue(double time_ns, double service_ns)
{
    if (time_ns >= windowStartNs + windowNs) {
        double windows_passed =
            (time_ns - windowStartNs) / windowNs;
        double skipped =
            static_cast<double>(
                static_cast<std::uint64_t>(windows_passed)) *
            windowNs;
        busyNs = std::max(0.0, busyNs - skipped);
        windowStartNs += skipped;
    }
    double wait = std::max(0.0, windowStartNs + busyNs - time_ns);
    busyNs += service_ns;
    return wait;
}

DramModel::DramModel(DramParams p)
    : prm(p)
{
    GPM_ASSERT(p.banks > 0 && (p.banks & (p.banks - 1)) == 0);
    GPM_ASSERT(p.rowBytes > 0 &&
               (p.rowBytes & (p.rowBytes - 1)) == 0);
    banks.reserve(p.banks);
    for (std::uint32_t b = 0; b < p.banks; b++)
        banks.emplace_back(p.windowNs);
}

double
DramModel::access(std::uint64_t addr, double time_ns)
{
    nAccesses++;
    std::uint64_t row_id = addr / prm.rowBytes;
    std::uint32_t bank =
        static_cast<std::uint32_t>(row_id) & (prm.banks - 1);
    std::uint64_t row = row_id / prm.banks;

    Bank &bk = banks[bank];
    bool hit = bk.openRow == row;
    if (hit)
        nRowHits++;
    else
        bk.openRow = row;

    double wait = bk.queue.enqueue(time_ns, prm.bankServiceNs);
    return wait + (hit ? prm.rowHitNs : prm.rowMissNs);
}

double
DramModel::rowHitRate() const
{
    if (nAccesses == 0)
        return 0.0;
    return static_cast<double>(nRowHits) /
        static_cast<double>(nAccesses);
}

} // namespace gpm
