#include "synth_generator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gpm
{

namespace
{
constexpr std::uint64_t hotBase = 0x0000'0000ULL;
constexpr std::uint64_t warmBase = 0x1000'0000ULL;
constexpr std::uint64_t coldBase = 0x2000'0000ULL;
constexpr std::uint64_t streamBase = 0x4000'0000ULL;
constexpr std::uint64_t streamSpacing = 0x0100'0000ULL;
constexpr std::uint64_t codeBase = 0x8000'0000ULL;
constexpr std::uint64_t strideBytes = 8;
} // namespace

SynthGenerator::SynthGenerator(const WorkloadSpec &spec_,
                               double length_scale)
    : spec(spec_), rng(spec_.seed, 0x9e3779b97f4a7c15ULL),
      limit(static_cast<std::uint64_t>(
          static_cast<double>(spec_.totalInsts) * length_scale)),
      pc(codeBase), siteBias(1024, 0.5)
{
    if (spec.phases.empty())
        fatal("workload '%s' has no phases", spec.name.c_str());
    for (const auto &ph : spec.phases) {
        if (ph.lengthInsts == 0)
            fatal("workload '%s': zero-length phase",
                  spec.name.c_str());
        if (ph.fracLoad + ph.fracStore + ph.fracBranch > 1.0)
            fatal("workload '%s': op-class fractions exceed 1",
                  spec.name.c_str());
    }
    double scale = std::max(length_scale, 1e-6);
    for (auto &ph : spec.phases) {
        ph.lengthInsts = std::max<std::uint64_t>(
            1000,
            static_cast<std::uint64_t>(
                static_cast<double>(ph.lengthInsts) * scale));
    }
    phaseLeft = spec.phases[0].lengthInsts;

    // Stable per-site branch direction biases.
    for (auto &b : siteBias) {
        double bias = rng.uniform(0.0, 1.0);
        b = bias; // direction resolved against phase bias later
    }
}

void
SynthGenerator::nextPhase()
{
    phaseIdx = (phaseIdx + 1) % spec.phases.size();
    phaseLeft = spec.phases[phaseIdx].lengthInsts;
}

std::uint64_t
SynthGenerator::dataAddress(const PhaseSpec &ph)
{
    double r = rng.uniform();
    if (r < ph.strideFrac) {
        std::size_t k = nextStream;
        nextStream = (nextStream + 1) % numStreams;
        std::uint64_t off = streamOff[k];
        streamOff[k] =
            (off + strideBytes) % std::max<std::uint64_t>(
                spec.streamBytes, strideBytes * 2);
        return streamBase + k * streamSpacing + off;
    }
    r -= ph.strideFrac;
    if (r < ph.coldFrac) {
        return coldBase +
            (rng.next64() % (spec.coldBytes / 8)) * 8;
    }
    r -= ph.coldFrac;
    if (r < ph.warmFrac) {
        return warmBase +
            (rng.next64() % (spec.warmBytes / 8)) * 8;
    }
    return hotBase + (rng.next64() % (spec.hotBytes / 8)) * 8;
}

bool
SynthGenerator::next(MicroOp &op)
{
    if (emittedOps >= limit)
        return false;
    if (phaseLeft == 0)
        nextPhase();
    phaseLeft--;
    emittedOps++;

    const PhaseSpec &ph = spec.phases[phaseIdx];

    op = MicroOp{};
    op.pc = pc;

    double r = rng.uniform();
    bool is_load = false;
    if (r < ph.fracLoad) {
        op.cls = OpClass::Load;
        is_load = true;
    } else if (r < ph.fracLoad + ph.fracStore) {
        op.cls = OpClass::Store;
    } else if (r < ph.fracLoad + ph.fracStore + ph.fracBranch) {
        op.cls = OpClass::Branch;
    } else if (rng.chance(ph.fracFp)) {
        double rf = rng.uniform();
        if (rf < ph.fracFpDiv)
            op.cls = OpClass::FpDiv;
        else if (rf < ph.fracFpDiv + ph.fracFpMul)
            op.cls = OpClass::FpMul;
        else
            op.cls = OpClass::FpAlu;
    } else {
        op.cls =
            rng.chance(ph.fracIntMul) ? OpClass::IntMul
                                      : OpClass::IntAlu;
    }

    // Register dependences: distance 1 + Geometric(depP), bounded by
    // the encodable range.
    auto draw_dep = [&]() -> std::uint8_t {
        std::uint32_t d = 1 + rng.geometric(ph.depP);
        return static_cast<std::uint8_t>(std::min<std::uint32_t>(d, 63));
    };

    if (is_load && rng.chance(ph.chainFrac) && opsSinceLoad < 63) {
        // Pointer chase: address depends on the previous load.
        op.depA = static_cast<std::uint8_t>(opsSinceLoad + 1);
    } else if (rng.chance(0.9)) {
        op.depA = draw_dep();
    }
    if (rng.chance(ph.dep2Prob))
        op.depB = draw_dep();

    if (isMem(op.cls))
        op.addr = dataAddress(ph);

    if (op.cls == OpClass::Branch) {
        std::size_t site = (pc >> 4) & (siteBias.size() - 1);
        // Resolve the site's stable direction against the phase's
        // predictability: a site is "biased-taken" when its stored
        // uniform draw is below 0.5.
        bool biased_taken = siteBias[site] < 0.5;
        double p_taken =
            biased_taken ? ph.branchBias : 1.0 - ph.branchBias;
        op.taken = rng.chance(p_taken);
        if (op.taken) {
            // Jump to a random 128 B block inside the code footprint.
            std::uint64_t blocks = std::max<std::uint64_t>(
                spec.codeBytes / 128, 1);
            pc = codeBase + (rng.next64() % blocks) * 128;
        } else {
            pc += 4;
        }
    } else {
        pc += 4;
    }

    if (is_load)
        opsSinceLoad = 0;
    else if (opsSinceLoad < 255)
        opsSinceLoad++;

    return true;
}

} // namespace gpm
