#include "workload.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.hh"

namespace gpm
{

namespace
{

/** Mostly-compute phase helper. */
PhaseSpec
cpuPhase(std::uint64_t len, double fp, double branch, double bias,
         double dep_p)
{
    PhaseSpec p{};
    p.lengthInsts = len;
    p.fracLoad = 0.22;
    p.fracStore = 0.10;
    p.fracBranch = branch;
    p.fracFp = fp;
    p.depP = dep_p;
    p.dep2Prob = 0.25;
    p.branchBias = bias;
    p.hotFrac = 1.0;
    return p;
}

/** Memory-heavy phase helper. */
PhaseSpec
memPhase(std::uint64_t len, double fp, double cold, double chain,
         double stride)
{
    PhaseSpec p{};
    p.lengthInsts = len;
    p.fracLoad = 0.32;
    p.fracStore = 0.10;
    p.fracBranch = 0.12;
    p.fracFp = fp;
    p.depP = 0.4;
    p.branchBias = 0.93;
    p.strideFrac = stride;
    p.coldFrac = cold;
    p.warmFrac = 0.15;
    p.hotFrac = 1.0 - stride - cold - 0.15;
    p.chainFrac = chain;
    return p;
}

std::vector<WorkloadSpec>
buildSuite()
{
    std::vector<WorkloadSpec> s;

    // ---- Very high CPU utilization -------------------------------
    {
        WorkloadSpec w;
        w.name = "sixtrack";
        w.isFp = true;
        w.memClass = "very high CPU, very low memory";
        w.seed = 1001;
        w.totalInsts = 40'000'000;
        PhaseSpec a = cpuPhase(7'000'000, 0.70, 0.07, 0.97, 0.05);
        a.fracFpDiv = 0.008;
        PhaseSpec b = cpuPhase(5'400'000, 0.62, 0.08, 0.96, 0.06);
        b.fracFpDiv = 0.008;
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "crafty";
        w.isFp = false;
        w.memClass = "very high CPU, very low memory";
        w.seed = 1002;
        w.totalInsts = 29'000'000;
        PhaseSpec a = cpuPhase(5'400'000, 0.0, 0.16, 0.93, 0.08);
        a.warmFrac = 0.03;
        a.hotFrac = 0.97;
        PhaseSpec b = cpuPhase(3'600'000, 0.0, 0.14, 0.94, 0.08);
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "perlbmk";
        w.isFp = false;
        w.memClass = "very high CPU, very low memory";
        w.seed = 1003;
        w.totalInsts = 25'000'000;
        w.codeBytes = 96 * 1024;
        PhaseSpec a = cpuPhase(2'500'000, 0.0, 0.18, 0.94, 0.10);
        a.warmFrac = 0.05;
        a.hotFrac = 0.95;
        w.phases = {a};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "gap";
        w.isFp = false;
        w.memClass = "high CPU, low memory";
        w.seed = 1004;
        w.totalInsts = 21'000'000;
        PhaseSpec a = cpuPhase(3'600'000, 0.0, 0.13, 0.94, 0.13);
        a.warmFrac = 0.10;
        a.coldFrac = 0.004;
        a.hotFrac = 1.0 - a.warmFrac - a.coldFrac;
        PhaseSpec b = memPhase(1'800'000, 0.0, 0.03, 0.25, 0.2);
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "wupwise";
        w.isFp = true;
        w.memClass = "high CPU, low memory";
        w.seed = 1005;
        w.totalInsts = 32'000'000;
        w.streamBytes = 768 * 1024; // mostly L2-resident streams
        PhaseSpec a = cpuPhase(5'200'000, 0.66, 0.06, 0.97, 0.06);
        a.fracFpDiv = 0.01;
        PhaseSpec b = cpuPhase(3'600'000, 0.60, 0.06, 0.97, 0.07);
        b.fracFpDiv = 0.01;
        b.strideFrac = 0.40;
        b.hotFrac = 0.55;
        b.coldFrac = 0.05;
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "facerec";
        w.isFp = true;
        w.memClass = "high CPU, low memory";
        w.seed = 1006;
        w.totalInsts = 28'000'000;
        w.streamBytes = 1024 * 1024;
        PhaseSpec a = cpuPhase(4'400'000, 0.58, 0.08, 0.96, 0.07);
        a.fracFpDiv = 0.01;
        PhaseSpec b = cpuPhase(2'700'000, 0.55, 0.08, 0.95, 0.08);
        b.fracFpDiv = 0.01;
        b.strideFrac = 0.30;
        b.hotFrac = 0.64;
        b.coldFrac = 0.06;
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "mesa";
        w.isFp = true;
        w.memClass = "high CPU, low memory";
        w.seed = 1007;
        w.totalInsts = 27'000'000;
        PhaseSpec a = cpuPhase(2'200'000, 0.45, 0.11, 0.95, 0.08);
        a.fracFpDiv = 0.01;
        a.warmFrac = 0.04;
        a.hotFrac = 0.96;
        w.phases = {a};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "gcc";
        w.isFp = false;
        w.memClass = "high CPU, low memory";
        w.seed = 1008;
        w.totalInsts = 18'000'000;
        w.codeBytes = 384 * 1024; // large code footprint
        PhaseSpec a = cpuPhase(3'200'000, 0.0, 0.17, 0.92, 0.20);
        a.warmFrac = 0.10;
        a.coldFrac = 0.006;
        a.hotFrac = 1.0 - a.warmFrac - a.coldFrac;
        PhaseSpec b = memPhase(2'200'000, 0.0, 0.035, 0.30, 0.1);
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "vortex";
        w.isFp = false;
        w.memClass = "high CPU, low memory";
        w.seed = 1009;
        w.totalInsts = 21'000'000;
        w.codeBytes = 192 * 1024;
        PhaseSpec a = cpuPhase(2'000'000, 0.0, 0.15, 0.94, 0.11);
        a.warmFrac = 0.09;
        a.coldFrac = 0.003;
        a.hotFrac = 1.0 - a.warmFrac - a.coldFrac;
        w.phases = {a};
        s.push_back(w);
    }

    // ---- Low CPU / high memory -----------------------------------
    {
        WorkloadSpec w;
        w.name = "ammp";
        w.isFp = true;
        w.memClass = "low CPU, high memory";
        w.seed = 1010;
        w.totalInsts = 10'000'000;
        PhaseSpec a = memPhase(3'600'000, 0.5, 0.075, 0.45, 0.10);
        PhaseSpec b = cpuPhase(2'800'000, 0.60, 0.08, 0.95, 0.10);
        b.warmFrac = 0.04;
        b.hotFrac = 0.96;
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "art";
        w.isFp = true;
        w.memClass = "very low CPU, very high memory";
        w.seed = 1011;
        w.totalInsts = 6'600'000;
        w.streamBytes = 8ULL * 1024 * 1024; // streams miss L2
        PhaseSpec a = memPhase(2'200'000, 0.5, 0.16, 0.30, 0.35);
        a.hotFrac = 1.0 - 0.35 - 0.16 - a.warmFrac;
        PhaseSpec b = memPhase(1'300'000, 0.5, 0.03, 0.10, 0.40);
        b.hotFrac = 1.0 - 0.40 - 0.03 - b.warmFrac;
        w.phases = {a, b};
        s.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "mcf";
        w.isFp = false;
        w.memClass = "very low CPU, very high memory";
        w.seed = 1012;
        w.totalInsts = 4'000'000;
        w.coldBytes = 256ULL * 1024 * 1024;
        PhaseSpec a = memPhase(1'700'000, 0.0, 0.28, 0.72, 0.0);
        a.hotFrac = 1.0 - 0.28 - a.warmFrac;
        PhaseSpec b = memPhase(650'000, 0.0, 0.09, 0.40, 0.0);
        b.hotFrac = 1.0 - 0.09 - b.warmFrac;
        w.phases = {a, b};
        s.push_back(w);
    }

    return s;
}

std::vector<std::pair<std::string, std::vector<std::string>>>
buildCombinations()
{
    return {
        // Table 2: 2-way CMP combinations.
        {"2way1", {"ammp", "art"}},
        {"2way2", {"gcc", "mesa"}},
        {"2way3", {"crafty", "facerec"}},
        {"2way4", {"art", "mcf"}},
        // Table 2: 4-way CMP combinations.
        {"4way1", {"ammp", "mcf", "crafty", "art"}},
        {"4way2", {"facerec", "gcc", "mesa", "vortex"}},
        {"4way3", {"sixtrack", "gap", "perlbmk", "wupwise"}},
        {"4way4", {"mcf", "mcf", "art", "art"}},
        // Figure 10: 8-way combinations (pairs of 4-way sets).
        {"8way1",
         {"ammp", "mcf", "crafty", "art", "facerec", "gcc", "mesa",
          "vortex"}},
        {"8way2",
         {"sixtrack", "gap", "perlbmk", "wupwise", "mcf", "mcf", "art",
          "art"}},
    };
}

} // namespace

const std::vector<WorkloadSpec> &
spec2000Suite()
{
    static const std::vector<WorkloadSpec> suite = buildSuite();
    return suite;
}

const WorkloadSpec &
workload(const std::string &name)
{
    for (const auto &w : spec2000Suite())
        if (w.name == name)
            return w;
    fatal("unknown workload '%s'", name.c_str());
}

bool
hasWorkload(const std::string &name)
{
    for (const auto &w : spec2000Suite())
        if (w.name == name)
            return true;
    return false;
}

const std::vector<std::pair<std::string, std::vector<std::string>>> &
benchmarkCombinations()
{
    static const auto combos = buildCombinations();
    return combos;
}

const std::vector<std::string> &
manyCoreCombo(std::size_t n)
{
    if (n < 1 || n > maxManyCoreCores)
        fatal("many-core combination size %zu out of [1, %zu]", n,
              maxManyCoreCores);
    // std::map nodes are stable, so returned references survive
    // later insertions; the mutex makes concurrent first lookups
    // (sweep workers, gpmd threads) safe.
    static std::mutex mtx;
    static std::map<std::size_t, std::vector<std::string>> cache;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(n);
    if (it == cache.end()) {
        const auto &suite = spec2000Suite();
        std::vector<std::string> combo(n);
        for (std::size_t c = 0; c < n; c++)
            combo[c] = suite[c % suite.size()].name;
        it = cache.emplace(n, std::move(combo)).first;
    }
    return it->second;
}

const std::vector<std::string> *
findCombination(const std::string &key)
{
    for (const auto &[k, v] : benchmarkCombinations())
        if (k == key)
            return &v;
    if (key.rfind("many", 0) == 0 && key.size() > 4) {
        const std::string digits = key.substr(4);
        if (digits.find_first_not_of("0123456789") !=
                std::string::npos ||
            digits.size() > 4)
            return nullptr;
        long n = std::atol(digits.c_str());
        if (n < 1 || n > static_cast<long>(maxManyCoreCores))
            return nullptr;
        return &manyCoreCombo(static_cast<std::size_t>(n));
    }
    return nullptr;
}

const std::vector<std::string> &
combination(const std::string &key)
{
    if (const auto *c = findCombination(key))
        return *c;
    fatal("unknown benchmark combination '%s'", key.c_str());
}

} // namespace gpm
