/**
 * @file
 * Content-addressed on-disk store of WorkloadProfiles: one
 * CRC32-framed file per (workload spec, DvfsTable, length-scale,
 * core-config) fingerprint, named `<workload>.<16-hex-fp>.gpmp`.
 *
 * Because the fingerprint is part of the file name, changing one
 * knob (a DVFS voltage, a phase fraction, the length scale) simply
 * addresses different files: only profiles whose inputs actually
 * changed are rebuilt, stale entries are left behind harmlessly,
 * and one directory can serve daemons running at different scales
 * or be shared between hosts.
 *
 * Writes are atomic (temp + rename, see binio::writeFileAtomic) so
 * a crash mid-save never leaves a truncated entry; corrupt or
 * truncated entries found on read are quarantined aside as
 * `.corrupt` and rebuilt. The `profile-read-corrupt` /
 * `profile-write-fail` / `profile-read-stall` fault points inject
 * the failure modes for chaos tests.
 *
 * Failure-domain circuit breaker (see util/breaker.hh): read
 * outcomes feed a breaker — corrupt/stalled reads are failures,
 * verified reads and plain absences are successes. While the
 * breaker is open every load() is an immediate miss (the library
 * rebuilds from the trace model instead of touching the sick disk)
 * and every save() is skipped; after the cooldown a single read
 * probes the store and a healthy result closes it again.
 */

#ifndef GPM_TRACE_PROFILE_STORE_HH
#define GPM_TRACE_PROFILE_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "trace/phase_profile.hh"
#include "util/breaker.hh"

namespace gpm
{

/** Monotonic counters; see ProfileStore::stats(). */
struct ProfileStoreStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t writeFailures = 0;
    /** Loads/saves refused by the open breaker. */
    std::uint64_t breakerRefusals = 0;
    /** Breaker transitions to open since construction. */
    std::uint64_t breakerOpens = 0;
    /** "closed" | "open" | "half-open". */
    const char *breakerState = "closed";
};

class ProfileStore
{
  public:
    /** Binds to (and creates if missing) directory @p dir. */
    explicit ProfileStore(std::string dir,
                          BreakerOptions breakerOpts =
                              BreakerOptions{});

    /**
     * Load the profile for (@p name, @p fp) into @p out.
     * @retval false when absent, corrupt (quarantined), or injected
     *         corrupt via the profile-read-corrupt fault point.
     */
    bool load(const std::string &name, std::uint64_t fp,
              WorkloadProfile &out);

    /**
     * Persist @p p as the entry for (@p name, @p fp), atomically.
     * @retval false on I/O failure or the profile-write-fail fault
     *         point (the profile is simply rebuilt next cold start).
     */
    bool save(const std::string &name, std::uint64_t fp,
              const WorkloadProfile &p);

    /** Entry file name: `<name>.<16-hex-fp>.gpmp`. */
    static std::string fileNameFor(const std::string &name,
                                   std::uint64_t fp);

    /** Full path of the entry for (@p name, @p fp). */
    std::string pathFor(const std::string &name,
                        std::uint64_t fp) const;

    const std::string &directory() const { return dir; }

    ProfileStoreStats stats() const;

    /** The read-path breaker (chaos tests poke its state). */
    const CircuitBreaker &readBreaker() const { return breaker; }

  private:
    void quarantine(const std::string &path);

    std::string dir;
    mutable std::mutex mtx; ///< guards the counters only
    ProfileStoreStats counters;
    CircuitBreaker breaker;
};

} // namespace gpm

#endif // GPM_TRACE_PROFILE_STORE_HH
