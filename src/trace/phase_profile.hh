/**
 * @file
 * Per-(benchmark, mode) execution profiles — the data the paper's
 * "static, trace-based CMP analysis tool" runs on.
 *
 * A workload is profiled once per DVFS mode on the detailed core
 * model. The result is a sequence of fixed-instruction-count *chunks*
 * (10K micro-ops each); for each chunk and mode we record the wall
 * time it took, the core energy it consumed, and its L2 traffic.
 * Because chunk boundaries are instruction positions, a core can
 * switch modes at any point and continue from the same program
 * position in another mode's timing/energy column — exactly the
 * semantics of the paper's simultaneous multi-trace progression.
 *
 * ProfileCursor replays a profile in wall-clock time; ProfileLibrary
 * builds or loads (disk-cached) profiles for the whole suite.
 */

#ifndef GPM_TRACE_PHASE_PROFILE_HH
#define GPM_TRACE_PHASE_PROFILE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "power/dvfs.hh"
#include "uarch/core_config.hh"
#include "util/breaker.hh"
#include "util/units.hh"

namespace gpm
{

/** Default instructions per profile chunk. */
constexpr std::uint64_t defaultChunkInsts = 10'000;

/** One profiled chunk at one mode. */
struct ChunkRecord
{
    /** Wall-clock time the chunk took at this mode [ps]. */
    std::uint64_t timePs = 0;
    /** Core energy consumed [J]. */
    double energyJ = 0.0;
    /** L2 accesses issued (L1 misses). */
    std::uint32_t l2Accesses = 0;
    /** L2 misses (off-chip accesses). */
    std::uint32_t l2Misses = 0;
};

/** A workload's timing/energy behaviour at one DVFS mode. */
struct ModeProfile
{
    /** Chunk records in program order. */
    std::vector<ChunkRecord> chunks;
    /** Instructions in every chunk except possibly the last. */
    std::uint64_t chunkInsts = defaultChunkInsts;
    /** Instructions in the final chunk. */
    std::uint64_t lastChunkInsts = defaultChunkInsts;

    /** Total instructions in the profile. */
    std::uint64_t totalInsts() const;

    /** End-to-end wall time [ps]. */
    std::uint64_t totalTimePs() const;

    /** End-to-end core energy [J]. */
    double totalEnergyJ() const;

    /** Whole-run average power [W]. */
    Watts avgPowerW() const;

    /**
     * Peak power over sliding windows of @p window_us [W]: the
     * highest average power any explore-interval-sized window of
     * the native run exhibits. A static (uncorrectable) mode
     * assignment must fit the budget at this level, not at the
     * whole-run average.
     */
    Watts peakPowerW(MicroSec window_us) const;

    /** Whole-run throughput in BIPS. */
    double bips() const;
};

/** A workload's profiles across all modes of a DvfsTable. */
struct WorkloadProfile
{
    /** Workload name. */
    std::string name;
    /** One ModeProfile per DVFS mode, indexed by PowerMode. */
    std::vector<ModeProfile> modes;

    /** Profile for mode @p m. */
    const ModeProfile &at(PowerMode m) const;
};

/**
 * Wall-clock replay of one WorkloadProfile: tracks a program
 * position (chunk + fractional instructions) and advances it through
 * time at a given mode, accumulating energy, instructions and L2
 * traffic. Mode switches keep the program position.
 */
class ProfileCursor
{
  public:
    /** What an advance()/peek() accumulated. */
    struct Delta
    {
        double instructions = 0.0;
        double energyJ = 0.0;
        double l2Accesses = 0.0;
        double l2Misses = 0.0;
        /** Wall time actually consumed [us] (< requested when the
         *  workload finishes). */
        MicroSec usedUs = 0.0;
        bool finished = false;
    };

    /** Bind to a profile (must outlive the cursor). */
    explicit ProfileCursor(const WorkloadProfile &profile);

    /**
     * Advance the program position by @p dt_us of wall time at mode
     * @p m, with an optional multiplicative time-dilation factor
     * (used by the analytic contention model; dilation > 1 slows
     * progress without changing energy-per-instruction).
     */
    Delta advance(MicroSec dt_us, PowerMode m, double dilation = 1.0);

    /** Like advance() but without moving the cursor. */
    Delta peek(MicroSec dt_us, PowerMode m, double dilation = 1.0) const;

    /**
     * Phase-shift the replay: start at fraction @p f (in [0, 1)) of
     * the instruction stream instead of the beginning. The cursor
     * runs from f to the end, wraps around to the beginning, and
     * finishes back at f — every instruction of the workload still
     * executes exactly once, so instruction/energy conservation and
     * the FirstDone termination semantics are unchanged. This is how
     * the many-core scenarios derive N heterogeneous schedules from
     * 12 workload profiles without building new profiles. Resets
     * progress; rewind() returns to the shifted start.
     */
    void seekFraction(double f);

    /** True when the workload has completed. */
    bool finished() const;

    /** Instructions retired so far. */
    double instructionsDone() const;

    /** Fraction of the workload completed, in [0, 1]. */
    double progress() const;

    /** Reset to the beginning. */
    void rewind();

    /** The underlying profile. */
    const WorkloadProfile &profile() const { return prof; }

  private:
    struct Pos
    {
        std::size_t chunk = 0;
        double frac = 0.0; ///< fraction of the chunk completed
        /** Wrapped past the last chunk back to chunk 0 (only ever
         *  set on a seekFraction()-shifted cursor). */
        bool wrapped = false;
    };

    Delta advanceFrom(Pos &pos, MicroSec dt_us, PowerMode m,
                      double dilation) const;
    bool posFinished(const Pos &pos, std::size_t n_chunks) const;

    const WorkloadProfile &prof;
    Pos cur;
    /** Replay origin; non-zero only after seekFraction(). */
    Pos start;
    /** True when start is not the beginning of the stream. */
    bool shifted = false;
    /** Instructions retired since the (possibly shifted) start;
     *  position arithmetic cannot recover this across a wrap. */
    double instsAcc = 0.0;
};

class ProfileStore;
struct WorkloadSpec;

/** Monotonic build/cache counters; see ProfileLibrary::stats(). */
struct ProfileLibraryStats
{
    /** Profiles built by running the detailed core model. */
    std::uint64_t builds = 0;
    /** Profiles served from the content-addressed disk store (or a
     *  legacy monolithic cache file, counted once per profile). */
    std::uint64_t diskHits = 0;
    /** Cumulative detailed-sim time across (workload x mode) runs
     *  [ms]. Sums per-mode run times, so under a parallel build it
     *  exceeds wall clock — it measures work done, not latency. */
    std::uint64_t buildMs = 0;
    /** Profiles currently ready to serve. */
    std::uint64_t ready = 0;
    /** Corrupt store entries quarantined aside (see ProfileStore). */
    std::uint64_t storeQuarantined = 0;
    /** Store writes that failed (entry rebuilt next cold start). */
    std::uint64_t storeWriteFailures = 0;
    /** Store loads/saves refused by its open circuit breaker. */
    std::uint64_t storeBreakerRefusals = 0;
    /** Store breaker transitions to open since attach. */
    std::uint64_t storeBreakerOpens = 0;
    /** "closed" | "open" | "half-open" ("closed" with no store). */
    const char *storeBreakerState = "closed";
};

/**
 * Builds, caches, and serves WorkloadProfiles for a set of workloads
 * under one DvfsTable. Building runs the detailed core model (see
 * Profiler); profiles persist either in a per-workload
 * content-addressed directory store (attachStore()) or a legacy
 * monolithic cache file (load()/save()) so benchmarks and daemons
 * start quickly after the first run.
 *
 * Concurrency: every profile lives in its own slot with a
 * per-entry build state (Empty -> Building -> Ready), so get() is
 * safe from concurrent sweep threads, distinct workloads build
 * concurrently, and a caller needing a profile another thread is
 * already building waits on *that entry* — never on the whole
 * suite and never behind a library-wide lock held across a
 * detailed-core sim. buildSuite() fans the missing
 * (workload x mode) runs out over a thread pool and assembles
 * results deterministically in suite order, bitwise-identical to a
 * serial build. load()/save()/loadOrBuild() are safe to run
 * concurrently with get(): load() merges into the live table
 * (publishing only Empty slots, never destroying existing ones) and
 * save() snapshots Ready profiles under the lock.
 */
class ProfileLibrary
{
  public:
    /**
     * @param dvfs          mode table to profile under
     * @param length_scale  workload length scale (tests use < 1)
     */
    explicit ProfileLibrary(const DvfsTable &dvfs,
                            double length_scale = 1.0);
    ~ProfileLibrary();

    /**
     * Get the profile for @p name, building it on first use (after
     * probing the attached store, if any). The returned reference
     * is stable for the library's lifetime. If another thread is
     * already building @p name, waits for that build.
     */
    const WorkloadProfile &get(const std::string &name);

    /**
     * Attach the content-addressed profile store rooted at @p dir
     * (created if missing): get() and buildSuite() then probe it
     * before building and write through to it after. Attach before
     * serving traffic. @p breakerOpts tunes the store's read-path
     * circuit breaker (persistent I/O faults degrade the library to
     * build-from-trace instead of stalling on a sick disk).
     */
    void attachStore(const std::string &dir,
                     BreakerOptions breakerOpts = BreakerOptions{});

    /**
     * Ensure every suite profile is Ready: probe the attached store
     * for each missing workload, then fan the remaining
     * (workload x mode) detailed-core runs out over a transient
     * thread pool (@p concurrency; 0 = defaultConcurrency()) and
     * assemble + publish in suite order. Safe to run while get()
     * serves other threads; assembled profiles are bitwise-identical
     * to serially built ones.
     */
    void buildSuite(std::size_t concurrency = 0);

    /**
     * Legacy monolithic cache flow: load cached profiles from
     * @p path if compatible; otherwise build all suite profiles (in
     * parallel, see buildSuite()) and save them to @p path.
     */
    void loadOrBuild(const std::string &path,
                     std::size_t concurrency = 0);

    /** Serialize all currently Ready profiles to @p path
     *  (atomically: temp + rename), in legacy monolithic format. */
    void save(const std::string &path) const;

    /**
     * Try to load a legacy monolithic cache from @p path, merging
     * its profiles into the library (slots that are already Ready
     * or Building keep their content — existing get() references
     * stay valid).
     * @retval false when missing or incompatible.
     */
    bool load(const std::string &path);

    /** Fingerprint of suite + dvfs + scale for monolithic cache
     *  validation. */
    std::uint64_t fingerprint() const;

    /**
     * Content fingerprint of one workload's profile inputs: store
     * format version, length scale, the DvfsTable, the CoreConfig,
     * and every WorkloadSpec field. Addresses entries in the
     * attached store — changing any input re-addresses (and so
     * rebuilds) only the profiles it affects.
     */
    std::uint64_t workloadFingerprint(const WorkloadSpec &spec) const;

    ProfileLibraryStats stats() const;

  private:
    /** One profile entry; its address never changes once created. */
    struct Slot
    {
        enum class State
        {
            Empty,    ///< nothing yet
            Building, ///< one thread is building/loading it
            Ready     ///< profile is valid and immutable
        };
        State state = State::Empty;
        WorkloadProfile profile;
    };

    Slot &slotForLocked(const std::string &name);
    void publishLocked(Slot &s, WorkloadProfile &&p, bool fromDisk,
                       std::uint64_t build_ms);

    const DvfsTable &dvfs;
    double lengthScale;
    /** Core configuration profiled under (Table 1 defaults); mixed
     *  into workloadFingerprint(). */
    CoreConfig cfg;
    /** Guards slots/order/counters; never held across a build. */
    mutable std::mutex mtx;
    /** Signalled on every slot state change. */
    std::condition_variable cv;
    /** unique_ptr: rehashing never invalidates references handed
     *  out; map: deterministic iteration. */
    std::map<std::string, std::unique_ptr<Slot>> slots;
    /** Slot creation order — save() emits profiles in this order so
     *  the monolithic format round-trips byte-identically. */
    std::vector<Slot *> order;
    std::unique_ptr<ProfileStore> store;
    ProfileLibraryStats counters;
};

} // namespace gpm

#endif // GPM_TRACE_PHASE_PROFILE_HH
