/**
 * @file
 * Per-(benchmark, mode) execution profiles — the data the paper's
 * "static, trace-based CMP analysis tool" runs on.
 *
 * A workload is profiled once per DVFS mode on the detailed core
 * model. The result is a sequence of fixed-instruction-count *chunks*
 * (10K micro-ops each); for each chunk and mode we record the wall
 * time it took, the core energy it consumed, and its L2 traffic.
 * Because chunk boundaries are instruction positions, a core can
 * switch modes at any point and continue from the same program
 * position in another mode's timing/energy column — exactly the
 * semantics of the paper's simultaneous multi-trace progression.
 *
 * ProfileCursor replays a profile in wall-clock time; ProfileLibrary
 * builds or loads (disk-cached) profiles for the whole suite.
 */

#ifndef GPM_TRACE_PHASE_PROFILE_HH
#define GPM_TRACE_PHASE_PROFILE_HH

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <vector>

#include "power/dvfs.hh"
#include "util/units.hh"

namespace gpm
{

/** Default instructions per profile chunk. */
constexpr std::uint64_t defaultChunkInsts = 10'000;

/** One profiled chunk at one mode. */
struct ChunkRecord
{
    /** Wall-clock time the chunk took at this mode [ps]. */
    std::uint64_t timePs = 0;
    /** Core energy consumed [J]. */
    double energyJ = 0.0;
    /** L2 accesses issued (L1 misses). */
    std::uint32_t l2Accesses = 0;
    /** L2 misses (off-chip accesses). */
    std::uint32_t l2Misses = 0;
};

/** A workload's timing/energy behaviour at one DVFS mode. */
struct ModeProfile
{
    /** Chunk records in program order. */
    std::vector<ChunkRecord> chunks;
    /** Instructions in every chunk except possibly the last. */
    std::uint64_t chunkInsts = defaultChunkInsts;
    /** Instructions in the final chunk. */
    std::uint64_t lastChunkInsts = defaultChunkInsts;

    /** Total instructions in the profile. */
    std::uint64_t totalInsts() const;

    /** End-to-end wall time [ps]. */
    std::uint64_t totalTimePs() const;

    /** End-to-end core energy [J]. */
    double totalEnergyJ() const;

    /** Whole-run average power [W]. */
    Watts avgPowerW() const;

    /**
     * Peak power over sliding windows of @p window_us [W]: the
     * highest average power any explore-interval-sized window of
     * the native run exhibits. A static (uncorrectable) mode
     * assignment must fit the budget at this level, not at the
     * whole-run average.
     */
    Watts peakPowerW(MicroSec window_us) const;

    /** Whole-run throughput in BIPS. */
    double bips() const;
};

/** A workload's profiles across all modes of a DvfsTable. */
struct WorkloadProfile
{
    /** Workload name. */
    std::string name;
    /** One ModeProfile per DVFS mode, indexed by PowerMode. */
    std::vector<ModeProfile> modes;

    /** Profile for mode @p m. */
    const ModeProfile &at(PowerMode m) const;
};

/**
 * Wall-clock replay of one WorkloadProfile: tracks a program
 * position (chunk + fractional instructions) and advances it through
 * time at a given mode, accumulating energy, instructions and L2
 * traffic. Mode switches keep the program position.
 */
class ProfileCursor
{
  public:
    /** What an advance()/peek() accumulated. */
    struct Delta
    {
        double instructions = 0.0;
        double energyJ = 0.0;
        double l2Accesses = 0.0;
        double l2Misses = 0.0;
        /** Wall time actually consumed [us] (< requested when the
         *  workload finishes). */
        MicroSec usedUs = 0.0;
        bool finished = false;
    };

    /** Bind to a profile (must outlive the cursor). */
    explicit ProfileCursor(const WorkloadProfile &profile);

    /**
     * Advance the program position by @p dt_us of wall time at mode
     * @p m, with an optional multiplicative time-dilation factor
     * (used by the analytic contention model; dilation > 1 slows
     * progress without changing energy-per-instruction).
     */
    Delta advance(MicroSec dt_us, PowerMode m, double dilation = 1.0);

    /** Like advance() but without moving the cursor. */
    Delta peek(MicroSec dt_us, PowerMode m, double dilation = 1.0) const;

    /** True when the workload has completed. */
    bool finished() const;

    /** Instructions retired so far. */
    double instructionsDone() const;

    /** Fraction of the workload completed, in [0, 1]. */
    double progress() const;

    /** Reset to the beginning. */
    void rewind();

    /** The underlying profile. */
    const WorkloadProfile &profile() const { return prof; }

  private:
    struct Pos
    {
        std::size_t chunk = 0;
        double frac = 0.0; ///< fraction of the chunk completed
    };

    Delta advanceFrom(Pos &pos, MicroSec dt_us, PowerMode m,
                      double dilation) const;

    const WorkloadProfile &prof;
    Pos cur;
};

/**
 * Builds, caches, and serves WorkloadProfiles for a set of workloads
 * under one DvfsTable. Building runs the detailed core model (see
 * Profiler); profiles are cached in a binary file so benchmarks
 * start quickly after the first run.
 *
 * get() is safe to call from concurrent sweep threads: lookups take
 * a shared lock and on-demand builds an exclusive one (builds
 * serialize, but sweeps run against a preloaded library where get()
 * is read-only). loadOrBuild()/load()/save() are setup-time
 * operations and must not race with get().
 */
class ProfileLibrary
{
  public:
    /**
     * @param dvfs          mode table to profile under
     * @param length_scale  workload length scale (tests use < 1)
     */
    explicit ProfileLibrary(const DvfsTable &dvfs,
                            double length_scale = 1.0);

    /**
     * Get the profile for @p name, building it on first use.
     * The returned reference is stable for the library's lifetime.
     */
    const WorkloadProfile &get(const std::string &name);

    /**
     * Load cached profiles from @p path if compatible; otherwise
     * build all suite profiles and save them to @p path.
     */
    void loadOrBuild(const std::string &path);

    /** Serialize all currently built profiles to @p path. */
    void save(const std::string &path) const;

    /**
     * Try to load from @p path.
     * @retval false when missing or incompatible.
     */
    bool load(const std::string &path);

    /** Fingerprint of suite + dvfs + scale for cache validation. */
    std::uint64_t fingerprint() const;

  private:
    const DvfsTable &dvfs;
    double lengthScale;
    /** Guards profiles; see the class comment. */
    mutable std::shared_mutex mtx;
    /** deque: growing never invalidates references handed out. */
    std::deque<WorkloadProfile> profiles;
};

} // namespace gpm

#endif // GPM_TRACE_PHASE_PROFILE_HH
