/**
 * @file
 * Deterministic synthetic micro-op stream generator driven by a
 * WorkloadSpec. Implements OpSource for the core timing model.
 */

#ifndef GPM_TRACE_SYNTH_GENERATOR_HH
#define GPM_TRACE_SYNTH_GENERATOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/workload.hh"
#include "uarch/isa.hh"
#include "util/rng.hh"

namespace gpm
{

/**
 * Generates the micro-op stream for one benchmark instance.
 *
 * Address-space layout (per core; the MemorySystem adds a per-core
 * offset in shared configurations):
 *
 *   hot set     @ 0x0000'0000  (L1-resident)
 *   warm set    @ 0x1000'0000  (L2-resident)
 *   cold set    @ 0x2000'0000  (DRAM-resident)
 *   streams     @ 0x4000'0000 + k * 16 MB (sequential)
 *   code        @ 0x8000'0000
 *
 * The generator is fully deterministic for a given (spec, seed,
 * length_scale), which is what makes per-mode profiling meaningful:
 * the same instruction stream is timed at each DVFS mode.
 */
class SynthGenerator : public OpSource
{
  public:
    /**
     * @param spec          workload descriptor
     * @param length_scale  scales phase lengths and total length
     *                      (used by quick test configurations)
     */
    explicit SynthGenerator(const WorkloadSpec &spec,
                            double length_scale = 1.0);

    bool next(MicroOp &op) override;

    /** Instructions emitted so far. */
    std::uint64_t emitted() const { return emittedOps; }

    /** Total instructions this stream will produce. */
    std::uint64_t totalInsts() const { return limit; }

    /** Index of the phase the generator is currently in. */
    std::size_t currentPhase() const { return phaseIdx; }

  private:
    /** Pick a data address for a memory op in the current phase. */
    std::uint64_t dataAddress(const PhaseSpec &ph);

    /** Advance phase bookkeeping. */
    void nextPhase();

    WorkloadSpec spec;
    Rng rng;
    std::uint64_t limit;
    std::uint64_t emittedOps = 0;

    std::size_t phaseIdx = 0;
    std::uint64_t phaseLeft;

    std::uint64_t pc;
    static constexpr std::size_t numStreams = 4;
    std::array<std::uint64_t, numStreams> streamOff{};
    std::size_t nextStream = 0;
    std::uint32_t opsSinceLoad = 255;

    /** Per-site branch direction bias, indexed by hashed PC. */
    std::vector<double> siteBias;
};

} // namespace gpm

#endif // GPM_TRACE_SYNTH_GENERATOR_HH
