#include "profiler.hh"

#include "trace/synth_generator.hh"
#include "uarch/core.hh"
#include "uarch/memory.hh"
#include "util/logging.hh"

namespace gpm
{

Profiler::Profiler(const DvfsTable &dvfs_, CoreConfig cfg_,
                   CorePowerParams pwr_)
    : dvfs(dvfs_), cfg(cfg_), pwrParams(pwr_)
{
}

ModeProfile
Profiler::profileMode(const WorkloadSpec &spec, PowerMode m,
                      double length_scale,
                      std::uint64_t chunk_insts) const
{
    GPM_ASSERT(chunk_insts > 0);
    GPM_ASSERT(m < dvfs.numModes());
    CorePowerModel power(pwrParams, dvfs);
    PrivateL2 l2(cfg);
    MemorySystem mem(cfg, l2);
    SynthGenerator gen(spec, length_scale);
    OooCore core(cfg, mem, gen, dvfs.frequency(m));

    ModeProfile mp;
    mp.chunkInsts = chunk_insts;
    mp.lastChunkInsts = chunk_insts;
    for (;;) {
        CoreRunResult r = core.run(chunk_insts);
        if (r.instructions == 0)
            break;
        ChunkRecord c;
        c.timePs = r.elapsedPs;
        c.energyJ = power.energy(r.activity, m);
        c.l2Accesses =
            static_cast<std::uint32_t>(r.activity.l2Accesses);
        c.l2Misses =
            static_cast<std::uint32_t>(r.activity.l2Misses);
        mp.chunks.push_back(c);
        if (r.streamEnded || r.instructions < chunk_insts) {
            mp.lastChunkInsts = r.instructions;
            break;
        }
    }
    return mp;
}

void
Profiler::checkModeConsistency(const WorkloadProfile &p)
{
    for (const ModeProfile &mp : p.modes) {
        // All modes time the same instruction stream.
        GPM_ASSERT(mp.chunks.size() ==
                   p.modes.front().chunks.size());
        GPM_ASSERT(mp.totalInsts() == p.modes.front().totalInsts());
    }
}

WorkloadProfile
Profiler::profileWorkload(const WorkloadSpec &spec,
                          double length_scale,
                          std::uint64_t chunk_insts) const
{
    GPM_ASSERT(chunk_insts > 0);
    WorkloadProfile result;
    result.name = spec.name;
    for (std::size_t mi = 0; mi < dvfs.numModes(); mi++)
        result.modes.push_back(
            profileMode(spec, static_cast<PowerMode>(mi),
                        length_scale, chunk_insts));
    checkModeConsistency(result);
    return result;
}

ProfileSummary
Profiler::summarize(const WorkloadProfile &p) const
{
    ProfileSummary s;
    s.name = p.name;
    const ModeProfile &turbo = p.at(modes::Turbo);
    double t0 = static_cast<double>(turbo.totalTimePs());
    double p0 = turbo.avgPowerW();
    s.turboPowerW = p0;
    s.turboIpc = static_cast<double>(turbo.totalInsts()) /
        (t0 * 1e-12 * dvfs.nominalFrequency());
    for (std::size_t mi = 1; mi < p.modes.size(); mi++) {
        const ModeProfile &mp = p.modes[mi];
        double t = static_cast<double>(mp.totalTimePs());
        s.perfDegradation.push_back((t - t0) / t0);
        s.powerSavings.push_back((p0 - mp.avgPowerW()) / p0);
    }
    return s;
}

} // namespace gpm
