/**
 * @file
 * Profiler: runs the detailed core model over a workload once per
 * DVFS mode and emits a WorkloadProfile (the single-threaded Turandot
 * runs of the paper's methodology).
 */

#ifndef GPM_TRACE_PROFILER_HH
#define GPM_TRACE_PROFILER_HH

#include "power/dvfs.hh"
#include "power/power_model.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"
#include "uarch/core_config.hh"

namespace gpm
{

/** Per-run summary statistics (for calibration and Figure 2). */
struct ProfileSummary
{
    std::string name;
    double turboIpc = 0.0;
    Watts turboPowerW = 0.0;
    /** Elapsed-time increase vs Turbo, per non-Turbo mode. */
    std::vector<double> perfDegradation;
    /** Average-power savings vs Turbo, per non-Turbo mode. */
    std::vector<double> powerSavings;
    double branchMispredictRate = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
};

/**
 * Builds WorkloadProfiles by simulation. Stateless between calls
 * apart from configuration.
 */
class Profiler
{
  public:
    /**
     * @param dvfs   mode table: one profiling run per mode
     * @param cfg    core configuration (Table 1 defaults)
     * @param pwr    power-model parameters
     */
    explicit Profiler(const DvfsTable &dvfs,
                      CoreConfig cfg = CoreConfig{},
                      CorePowerParams pwr = CorePowerParams::classic());

    /**
     * Profile @p spec at every mode.
     *
     * @param length_scale scales the workload length (tests use < 1)
     * @param chunk_insts  instructions per chunk
     */
    WorkloadProfile profileWorkload(
        const WorkloadSpec &spec, double length_scale = 1.0,
        std::uint64_t chunk_insts = defaultChunkInsts) const;

    /**
     * Profile @p spec at one mode. Each mode's run is an independent
     * deterministic simulation over the same instruction stream, so
     * (workload x mode) runs can be fanned out across threads and
     * assembled into a WorkloadProfile identical to a serial
     * profileWorkload() — see checkModeConsistency().
     */
    ModeProfile profileMode(
        const WorkloadSpec &spec, PowerMode m,
        double length_scale = 1.0,
        std::uint64_t chunk_insts = defaultChunkInsts) const;

    /**
     * Assert the cross-mode invariants profileWorkload() guarantees:
     * every mode timed the same instruction stream (equal chunk
     * counts and totals). Used by callers that assemble profiles
     * from independently built ModeProfiles.
     */
    static void checkModeConsistency(const WorkloadProfile &p);

    /** Summarize a built profile (power/perf vs Turbo per mode). */
    ProfileSummary summarize(const WorkloadProfile &p) const;

  private:
    const DvfsTable &dvfs;
    CoreConfig cfg;
    CorePowerParams pwrParams;
};

} // namespace gpm

#endif // GPM_TRACE_PROFILER_HH
