#include "trace/profile_store.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "util/binio.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace gpm
{

namespace
{

/** Entry payload layout (wrapped in the binio frame): name length
 *  (LE u32) + name bytes, mode count (LE u32), then per mode
 *  chunkInsts (LE u64), lastChunkInsts (LE u64), chunk count
 *  (LE u32) and the raw ChunkRecord array. The magic doubles as the
 *  format version — bump the trailing digit on layout changes. */
constexpr char kMagic[8] = {'G', 'P', 'M', 'P',
                            'R', 'O', 'F', '1'};

std::string
serializeProfile(const WorkloadProfile &p)
{
    std::string out;
    binio::putLe(out, p.name.size(), 4);
    out += p.name;
    binio::putLe(out, p.modes.size(), 4);
    for (const ModeProfile &mp : p.modes) {
        binio::putLe(out, mp.chunkInsts, 8);
        binio::putLe(out, mp.lastChunkInsts, 8);
        binio::putLe(out, mp.chunks.size(), 4);
        out.append(
            reinterpret_cast<const char *>(mp.chunks.data()),
            mp.chunks.size() * sizeof(ChunkRecord));
    }
    return out;
}

bool
parseProfile(const std::string &in, WorkloadProfile &out)
{
    std::size_t off = 0;
    auto need = [&](std::size_t n) { return in.size() - off >= n; };
    auto ru32 = [&](std::uint32_t &v) {
        if (!need(4))
            return false;
        v = static_cast<std::uint32_t>(
            binio::getLe(in.data() + off, 4));
        off += 4;
        return true;
    };
    auto ru64 = [&](std::uint64_t &v) {
        if (!need(8))
            return false;
        v = binio::getLe(in.data() + off, 8);
        off += 8;
        return true;
    };

    WorkloadProfile p;
    std::uint32_t name_len = 0;
    if (!ru32(name_len) || name_len > 256 || !need(name_len))
        return false;
    p.name.assign(in, off, name_len);
    off += name_len;
    std::uint32_t n_modes = 0;
    if (!ru32(n_modes) || n_modes > 64)
        return false;
    for (std::uint32_t m = 0; m < n_modes; m++) {
        ModeProfile mp;
        std::uint32_t n_chunks = 0;
        if (!ru64(mp.chunkInsts) || !ru64(mp.lastChunkInsts) ||
            !ru32(n_chunks) || n_chunks > 100'000'000 ||
            !need(static_cast<std::size_t>(n_chunks) *
                  sizeof(ChunkRecord)))
            return false;
        mp.chunks.resize(n_chunks);
        std::memcpy(mp.chunks.data(), in.data() + off,
                    n_chunks * sizeof(ChunkRecord));
        off += static_cast<std::size_t>(n_chunks) *
            sizeof(ChunkRecord);
        p.modes.push_back(std::move(mp));
    }
    if (off != in.size()) // trailing garbage
        return false;
    out = std::move(p);
    return true;
}

} // namespace

ProfileStore::ProfileStore(std::string dir_,
                           BreakerOptions breakerOpts)
    : dir(std::move(dir_)), breaker(breakerOpts)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        warn("profile store: cannot create %s: %s", dir.c_str(),
             std::strerror(errno));
}

std::string
ProfileStore::fileNameFor(const std::string &name, std::uint64_t fp)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), ".%016llx.gpmp",
                  static_cast<unsigned long long>(fp));
    return name + buf;
}

std::string
ProfileStore::pathFor(const std::string &name,
                      std::uint64_t fp) const
{
    return dir + "/" + fileNameFor(name, fp);
}

void
ProfileStore::quarantine(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        counters.quarantined++;
    }
    std::string aside = path + ".corrupt";
    if (::rename(path.c_str(), aside.c_str()) != 0) {
        warn("profile store: cannot quarantine %s: %s",
             path.c_str(), std::strerror(errno));
        ::unlink(path.c_str());
    } else {
        warn("profile store: quarantined corrupt entry %s",
             aside.c_str());
    }
}

bool
ProfileStore::load(const std::string &name, std::uint64_t fp,
                   WorkloadProfile &out)
{
    // Breaker open: skip the sick disk entirely — the caller
    // rebuilds the profile from the trace model instead.
    if (!breaker.allow()) {
        std::lock_guard<std::mutex> lock(mtx);
        counters.breakerRefusals++;
        counters.misses++;
        return false;
    }
    // A stalled read is the failure mode breakers exist for: pay
    // the injected delay once, count it against the window.
    if (fault::armed() &&
        fault::maybeDelay(fault::Point::ProfileReadStall)) {
        breaker.recordFailure();
        std::lock_guard<std::mutex> lock(mtx);
        counters.misses++;
        return false;
    }
    std::string path = pathFor(name, fp);
    std::string raw;
    if (!binio::readWholeFile(path, raw)) {
        // A plain absence is a healthy answer, not an I/O fault.
        breaker.recordSuccess();
        std::lock_guard<std::mutex> lock(mtx);
        counters.misses++;
        return false;
    }

    std::string payload;
    bool corrupt = !binio::unframe(kMagic, raw, payload);
    if (!corrupt && fault::armed() &&
        fault::fire(fault::Point::ProfileReadCorrupt))
        corrupt = true;
    WorkloadProfile p;
    // The name is content-addressed into the path, but the payload
    // carries it too: a mismatch means a renamed/clobbered file and
    // counts as corruption.
    if (!corrupt)
        corrupt = !parseProfile(payload, p) || p.name != name;
    if (corrupt) {
        breaker.recordFailure();
        quarantine(path);
        std::lock_guard<std::mutex> lock(mtx);
        counters.misses++;
        return false;
    }

    breaker.recordSuccess();
    out = std::move(p);
    std::lock_guard<std::mutex> lock(mtx);
    counters.hits++;
    return true;
}

bool
ProfileStore::save(const std::string &name, std::uint64_t fp,
                   const WorkloadProfile &p)
{
    // Writing to a disk the breaker holds open would stall the
    // builder the same way reads did; the profile simply stays
    // memory-resident (rebuilt next cold start, like any failed
    // save). Half-open is fine: the probe is a read.
    if (breaker.state() == CircuitBreaker::State::Open) {
        std::lock_guard<std::mutex> lock(mtx);
        counters.breakerRefusals++;
        return false;
    }
    if (fault::armed() &&
        fault::fire(fault::Point::ProfileWriteFail)) {
        std::lock_guard<std::mutex> lock(mtx);
        counters.writeFailures++;
        return false;
    }
    std::string blob = binio::frame(kMagic, serializeProfile(p));
    if (!binio::writeFileAtomic(pathFor(name, fp), blob)) {
        warn("profile store: cannot commit %s: %s",
             fileNameFor(name, fp).c_str(), std::strerror(errno));
        std::lock_guard<std::mutex> lock(mtx);
        counters.writeFailures++;
        return false;
    }
    return true;
}

ProfileStoreStats
ProfileStore::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    ProfileStoreStats s = counters;
    s.breakerOpens = breaker.opens();
    s.breakerState = breaker.stateName();
    return s;
}

} // namespace gpm
