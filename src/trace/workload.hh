/**
 * @file
 * Synthetic SPEC CPU2000-like workload descriptors.
 *
 * The paper's experiments use 12 SPEC CPU2000 benchmarks compiled for
 * POWER4. We cannot redistribute SPEC, so each benchmark is described
 * statistically: operation mix, dependence-distance distribution
 * (ILP), memory-region locality (L1-resident hot set / L2-resident
 * warm set / DRAM-resident cold set / streaming), load-load dependence
 * chains (pointer chasing), branch predictability, code footprint and
 * a repeating *phase* script providing the intra-workload temporal
 * variability that dynamic global management exploits.
 *
 * The descriptors are calibrated so that Turbo IPC, relative power,
 * and DVFS performance sensitivity (elapsed-time increase at Eff1 /
 * Eff2) match the paper's Figure 2 corner cases (sixtrack ~17.3%,
 * mcf ~3.7% at Eff2) and the published CPU- vs memory-boundedness
 * taxonomy of Table 2.
 */

#ifndef GPM_TRACE_WORKLOAD_HH
#define GPM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gpm
{

/**
 * Statistical behaviour of one program phase. Fractions that select
 * op classes must satisfy fracLoad + fracStore + fracBranch <= 1;
 * the remainder is compute.
 */
struct PhaseSpec
{
    /** Instructions per occurrence of this phase. */
    std::uint64_t lengthInsts;

    /** Fraction of ops that are loads. */
    double fracLoad;
    /** Fraction of ops that are stores. */
    double fracStore;
    /** Fraction of ops that are conditional branches. */
    double fracBranch;
    /** FP share of compute ops (0 = pure integer). */
    double fracFp;
    /** Multiply share within FP compute. */
    double fracFpMul = 0.4;
    /** Divide share within FP compute. */
    double fracFpDiv = 0.02;
    /** Multiply share within integer compute. */
    double fracIntMul = 0.05;

    /**
     * Geometric parameter for dependence distances: distance =
     * 1 + Geometric(depP). Smaller depP => longer distances =>
     * more ILP.
     */
    double depP = 0.35;
    /** Probability an op has a second register source. */
    double dep2Prob = 0.35;

    /** Share of memory ops that stream sequentially. */
    double strideFrac = 0.0;
    /** Share of memory ops hitting the hot (L1-resident) set. */
    double hotFrac = 1.0;
    /** Share hitting the warm (L2-resident) set. */
    double warmFrac = 0.0;
    /**
     * Share hitting the cold (DRAM-resident) set. Remaining share
     * (1 - stride - hot - warm - cold) is treated as hot.
     */
    double coldFrac = 0.0;
    /**
     * Probability a load's source depends on the previous load
     * (pointer chasing: serializes misses, destroys MLP).
     */
    double chainFrac = 0.0;

    /** Per-site branch bias (predictability); 0.5 = random. */
    double branchBias = 0.95;
};

/** One synthetic benchmark: footprint geometry plus a phase script. */
struct WorkloadSpec
{
    /** Benchmark name ("mcf", "sixtrack", ...). */
    std::string name;
    /** SPEC FP (vs INT) suite membership. */
    bool isFp;
    /** Table 2 style taxonomy string. */
    std::string memClass;
    /** Total instructions in the trace. */
    std::uint64_t totalInsts;
    /** Generator seed (deterministic workloads). */
    std::uint64_t seed;

    /** Code footprint (drives I-cache behaviour) [bytes]. */
    std::uint64_t codeBytes = 32 * 1024;
    /** Hot data set (L1-resident) [bytes]. */
    std::uint64_t hotBytes = 8 * 1024;
    /** Warm data set (L2-resident) [bytes]. */
    std::uint64_t warmBytes = 512 * 1024;
    /** Cold data set (DRAM-resident) [bytes]. */
    std::uint64_t coldBytes = 128ULL * 1024 * 1024;
    /** Footprint of each sequential stream [bytes]. */
    std::uint64_t streamBytes = 4ULL * 1024 * 1024;

    /** Repeating phase script. */
    std::vector<PhaseSpec> phases;
};

/**
 * The 12-benchmark SPEC CPU2000 stand-in suite used throughout the
 * paper's evaluation: ammp, art, mcf, crafty, facerec, gcc, mesa,
 * vortex, sixtrack, gap, perlbmk, wupwise.
 */
const std::vector<WorkloadSpec> &spec2000Suite();

/** Look up a suite workload by name; fatal() if unknown. */
const WorkloadSpec &workload(const std::string &name);

/** True when @p name is a suite workload (non-fatal lookup). */
bool hasWorkload(const std::string &name);

/**
 * The paper's Table 2 benchmark combinations, keyed as "2way1",
 * "2way2", ..., "4way1", ..., "8way1", "8way2".
 */
const std::vector<std::pair<std::string, std::vector<std::string>>> &
benchmarkCombinations();

/** Largest @p n a "many<N>" combination accepts. */
constexpr std::size_t maxManyCoreCores = 1024;

/**
 * Many-core combination: @p n cores cycling through the 12-benchmark
 * suite (core c runs suite[c % 12]). Only 12 distinct workloads ever
 * appear, so profile building stays O(workloads) regardless of n;
 * per-core heterogeneity beyond the cycling pattern comes from the
 * simulator's phase-shifted schedules (SimConfig::phaseShiftStride).
 * The returned reference is stable for the process lifetime.
 * fatal() unless 1 <= n <= maxManyCoreCores.
 */
const std::vector<std::string> &manyCoreCombo(std::size_t n);

/** Look up a Table 2 combination by key; fatal() if unknown. */
const std::vector<std::string> &combination(const std::string &key);

/** Combination lookup returning nullptr instead of fatal(); also
 *  resolves dynamic "many<N>" keys (e.g. "many256") for N in
 *  [1, maxManyCoreCores]. */
const std::vector<std::string> *
findCombination(const std::string &key);

} // namespace gpm

#endif // GPM_TRACE_WORKLOAD_HH
