#include "phase_profile.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "trace/profiler.hh"
#include "trace/workload.hh"
#include "util/logging.hh"

namespace gpm
{

std::uint64_t
ModeProfile::totalInsts() const
{
    if (chunks.empty())
        return 0;
    return (chunks.size() - 1) * chunkInsts + lastChunkInsts;
}

std::uint64_t
ModeProfile::totalTimePs() const
{
    std::uint64_t t = 0;
    for (const auto &c : chunks)
        t += c.timePs;
    return t;
}

double
ModeProfile::totalEnergyJ() const
{
    double e = 0.0;
    for (const auto &c : chunks)
        e += c.energyJ;
    return e;
}

Watts
ModeProfile::avgPowerW() const
{
    std::uint64_t t = totalTimePs();
    if (t == 0)
        return 0.0;
    return totalEnergyJ() / (static_cast<double>(t) * 1e-12);
}

Watts
ModeProfile::peakPowerW(MicroSec window_us) const
{
    GPM_ASSERT(window_us > 0.0);
    const double window_ps = window_us * 1e6;
    // Two-pointer sliding window over the chunk sequence.
    Watts peak = 0.0;
    double win_t = 0.0, win_e = 0.0;
    std::size_t head = 0;
    for (std::size_t tail = 0; tail < chunks.size(); tail++) {
        win_t += static_cast<double>(chunks[tail].timePs);
        win_e += chunks[tail].energyJ;
        while (win_t > window_ps && head < tail) {
            win_t -= static_cast<double>(chunks[head].timePs);
            win_e -= chunks[head].energyJ;
            head++;
        }
        if (win_t > 0.0)
            peak = std::max(peak, win_e / (win_t * 1e-12));
    }
    return peak;
}

double
ModeProfile::bips() const
{
    std::uint64_t t = totalTimePs();
    if (t == 0)
        return 0.0;
    double secs = static_cast<double>(t) * 1e-12;
    return static_cast<double>(totalInsts()) / secs / 1e9;
}

const ModeProfile &
WorkloadProfile::at(PowerMode m) const
{
    GPM_ASSERT(m < modes.size());
    return modes[m];
}

ProfileCursor::ProfileCursor(const WorkloadProfile &profile)
    : prof(profile)
{
    GPM_ASSERT(!prof.modes.empty());
}

bool
ProfileCursor::finished() const
{
    return cur.chunk >= prof.modes[0].chunks.size();
}

double
ProfileCursor::instructionsDone() const
{
    const ModeProfile &mp = prof.modes[0];
    if (finished())
        return static_cast<double>(mp.totalInsts());
    double insts =
        static_cast<double>(cur.chunk) *
        static_cast<double>(mp.chunkInsts);
    std::uint64_t this_chunk = cur.chunk + 1 == mp.chunks.size()
        ? mp.lastChunkInsts
        : mp.chunkInsts;
    return insts + cur.frac * static_cast<double>(this_chunk);
}

double
ProfileCursor::progress() const
{
    double total = static_cast<double>(prof.modes[0].totalInsts());
    if (total <= 0.0)
        return 1.0;
    return instructionsDone() / total;
}

void
ProfileCursor::rewind()
{
    cur = Pos{};
}

ProfileCursor::Delta
ProfileCursor::advanceFrom(Pos &pos, MicroSec dt_us, PowerMode m,
                           double dilation) const
{
    GPM_ASSERT(m < prof.modes.size());
    GPM_ASSERT(dilation >= 1.0);
    const ModeProfile &mp = prof.modes[m];
    Delta d;
    double remaining_ps = dt_us * 1e6; // us -> ps

    while (remaining_ps > 0.0 && pos.chunk < mp.chunks.size()) {
        const ChunkRecord &c = mp.chunks[pos.chunk];
        std::uint64_t this_chunk_insts =
            pos.chunk + 1 == mp.chunks.size() ? mp.lastChunkInsts
                                              : mp.chunkInsts;
        double chunk_ps = static_cast<double>(c.timePs) * dilation;
        double rem_frac = 1.0 - pos.frac;
        double rem_ps = chunk_ps * rem_frac;

        if (rem_ps <= remaining_ps) {
            // Finish the chunk.
            d.instructions +=
                rem_frac * static_cast<double>(this_chunk_insts);
            d.energyJ += rem_frac * c.energyJ;
            d.l2Accesses +=
                rem_frac * static_cast<double>(c.l2Accesses);
            d.l2Misses += rem_frac * static_cast<double>(c.l2Misses);
            remaining_ps -= rem_ps;
            pos.chunk++;
            pos.frac = 0.0;
        } else {
            double f = remaining_ps / chunk_ps;
            d.instructions +=
                f * static_cast<double>(this_chunk_insts);
            d.energyJ += f * c.energyJ;
            d.l2Accesses += f * static_cast<double>(c.l2Accesses);
            d.l2Misses += f * static_cast<double>(c.l2Misses);
            pos.frac += f;
            remaining_ps = 0.0;
        }
    }

    d.usedUs = dt_us - remaining_ps * 1e-6;
    d.finished = pos.chunk >= mp.chunks.size();
    return d;
}

ProfileCursor::Delta
ProfileCursor::advance(MicroSec dt_us, PowerMode m, double dilation)
{
    return advanceFrom(cur, dt_us, m, dilation);
}

ProfileCursor::Delta
ProfileCursor::peek(MicroSec dt_us, PowerMode m, double dilation) const
{
    Pos tmp = cur;
    return advanceFrom(tmp, dt_us, m, dilation);
}

// ---------------------------------------------------------------
// ProfileLibrary
// ---------------------------------------------------------------

namespace
{
constexpr std::uint32_t profileMagic = 0x47504d50; // "GPMP"
constexpr std::uint32_t profileVersion = 3;
} // namespace

ProfileLibrary::ProfileLibrary(const DvfsTable &dvfs_,
                               double length_scale)
    : dvfs(dvfs_), lengthScale(length_scale)
{
}

std::uint64_t
ProfileLibrary::fingerprint() const
{
    // FNV-1a over the parameters that determine profile contents.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    mix(profileVersion);
    mix(static_cast<std::uint64_t>(lengthScale * 1e6));
    mix(dvfs.numModes());
    for (std::size_t m = 0; m < dvfs.numModes(); m++) {
        mix(static_cast<std::uint64_t>(
            dvfs.frequency(static_cast<PowerMode>(m))));
        mix(static_cast<std::uint64_t>(
            dvfs.voltage(static_cast<PowerMode>(m)) * 1e6));
    }
    for (const auto &w : spec2000Suite()) {
        mix(w.seed);
        mix(w.totalInsts);
        mix(w.phases.size());
        for (const auto &ph : w.phases) {
            mix(ph.lengthInsts);
            mix(static_cast<std::uint64_t>(ph.fracLoad * 1e6));
            mix(static_cast<std::uint64_t>(ph.coldFrac * 1e6));
            mix(static_cast<std::uint64_t>(ph.chainFrac * 1e6));
            mix(static_cast<std::uint64_t>(ph.strideFrac * 1e6));
            mix(static_cast<std::uint64_t>(ph.fracFp * 1e6));
            mix(static_cast<std::uint64_t>(ph.branchBias * 1e6));
        }
    }
    return h;
}

const WorkloadProfile &
ProfileLibrary::get(const std::string &name)
{
    {
        std::shared_lock<std::shared_mutex> lock(mtx);
        for (const auto &p : profiles)
            if (p.name == name)
                return p;
    }
    std::unique_lock<std::shared_mutex> lock(mtx);
    // Another thread may have built it between the locks.
    for (const auto &p : profiles)
        if (p.name == name)
            return p;
    Profiler profiler(dvfs);
    profiles.push_back(
        profiler.profileWorkload(workload(name), lengthScale));
    return profiles.back();
}

void
ProfileLibrary::loadOrBuild(const std::string &path)
{
    if (load(path))
        return;
    inform("profile cache '%s' missing or stale; building suite "
           "profiles (one-time)",
           path.c_str());
    Profiler profiler(dvfs);
    profiles.clear();
    for (const auto &w : spec2000Suite()) {
        inform("  profiling %s (%llu Minsts x %zu modes)",
               w.name.c_str(),
               static_cast<unsigned long long>(
                   w.totalInsts / 1'000'000),
               dvfs.numModes());
        profiles.push_back(profiler.profileWorkload(w, lengthScale));
    }
    save(path);
}

void
ProfileLibrary::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("cannot write profile cache '%s'", path.c_str());
        return;
    }
    auto w32 = [f](std::uint32_t v) { std::fwrite(&v, 4, 1, f); };
    auto w64 = [f](std::uint64_t v) { std::fwrite(&v, 8, 1, f); };
    w32(profileMagic);
    w32(profileVersion);
    w64(fingerprint());
    w32(static_cast<std::uint32_t>(profiles.size()));
    for (const auto &p : profiles) {
        w32(static_cast<std::uint32_t>(p.name.size()));
        std::fwrite(p.name.data(), 1, p.name.size(), f);
        w32(static_cast<std::uint32_t>(p.modes.size()));
        for (const auto &mp : p.modes) {
            w64(mp.chunkInsts);
            w64(mp.lastChunkInsts);
            w32(static_cast<std::uint32_t>(mp.chunks.size()));
            std::fwrite(mp.chunks.data(), sizeof(ChunkRecord),
                        mp.chunks.size(), f);
        }
    }
    std::fclose(f);
}

bool
ProfileLibrary::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    auto fail = [&]() {
        std::fclose(f);
        return false;
    };
    auto r32 = [f](std::uint32_t &v) {
        return std::fread(&v, 4, 1, f) == 1;
    };
    auto r64 = [f](std::uint64_t &v) {
        return std::fread(&v, 8, 1, f) == 1;
    };
    std::uint32_t magic = 0, version = 0, count = 0;
    std::uint64_t fp = 0;
    if (!r32(magic) || magic != profileMagic)
        return fail();
    if (!r32(version) || version != profileVersion)
        return fail();
    if (!r64(fp) || fp != fingerprint())
        return fail();
    if (!r32(count) || count > 1024)
        return fail();
    std::deque<WorkloadProfile> loaded;
    for (std::uint32_t i = 0; i < count; i++) {
        WorkloadProfile p;
        std::uint32_t name_len = 0;
        if (!r32(name_len) || name_len > 256)
            return fail();
        p.name.resize(name_len);
        if (std::fread(p.name.data(), 1, name_len, f) != name_len)
            return fail();
        std::uint32_t n_modes = 0;
        if (!r32(n_modes) || n_modes > 64)
            return fail();
        for (std::uint32_t m = 0; m < n_modes; m++) {
            ModeProfile mp;
            std::uint32_t n_chunks = 0;
            if (!r64(mp.chunkInsts) || !r64(mp.lastChunkInsts) ||
                !r32(n_chunks) || n_chunks > 100'000'000)
                return fail();
            mp.chunks.resize(n_chunks);
            if (std::fread(mp.chunks.data(), sizeof(ChunkRecord),
                           n_chunks, f) != n_chunks)
                return fail();
            p.modes.push_back(std::move(mp));
        }
        loaded.push_back(std::move(p));
    }
    std::fclose(f);
    profiles = std::move(loaded);
    return true;
}

} // namespace gpm
