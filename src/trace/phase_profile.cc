#include "phase_profile.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "trace/profile_store.hh"
#include "trace/profiler.hh"
#include "trace/workload.hh"
#include "util/binio.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace gpm
{

std::uint64_t
ModeProfile::totalInsts() const
{
    if (chunks.empty())
        return 0;
    return (chunks.size() - 1) * chunkInsts + lastChunkInsts;
}

std::uint64_t
ModeProfile::totalTimePs() const
{
    std::uint64_t t = 0;
    for (const auto &c : chunks)
        t += c.timePs;
    return t;
}

double
ModeProfile::totalEnergyJ() const
{
    double e = 0.0;
    for (const auto &c : chunks)
        e += c.energyJ;
    return e;
}

Watts
ModeProfile::avgPowerW() const
{
    std::uint64_t t = totalTimePs();
    if (t == 0)
        return 0.0;
    return totalEnergyJ() / (static_cast<double>(t) * 1e-12);
}

Watts
ModeProfile::peakPowerW(MicroSec window_us) const
{
    GPM_ASSERT(window_us > 0.0);
    const double window_ps = window_us * 1e6;
    // Two-pointer sliding window over the chunk sequence.
    Watts peak = 0.0;
    double win_t = 0.0, win_e = 0.0;
    std::size_t head = 0;
    for (std::size_t tail = 0; tail < chunks.size(); tail++) {
        win_t += static_cast<double>(chunks[tail].timePs);
        win_e += chunks[tail].energyJ;
        while (win_t > window_ps && head < tail) {
            win_t -= static_cast<double>(chunks[head].timePs);
            win_e -= chunks[head].energyJ;
            head++;
        }
        if (win_t > 0.0)
            peak = std::max(peak, win_e / (win_t * 1e-12));
    }
    return peak;
}

double
ModeProfile::bips() const
{
    std::uint64_t t = totalTimePs();
    if (t == 0)
        return 0.0;
    double secs = static_cast<double>(t) * 1e-12;
    return static_cast<double>(totalInsts()) / secs / 1e9;
}

const ModeProfile &
WorkloadProfile::at(PowerMode m) const
{
    GPM_ASSERT(m < modes.size());
    return modes[m];
}

ProfileCursor::ProfileCursor(const WorkloadProfile &profile)
    : prof(profile)
{
    GPM_ASSERT(!prof.modes.empty());
}

bool
ProfileCursor::posFinished(const Pos &pos,
                           std::size_t n_chunks) const
{
    if (!shifted)
        return pos.chunk >= n_chunks;
    // A shifted replay finishes when the wrapped pass climbs back
    // to the start position.
    return pos.wrapped &&
        (pos.chunk > start.chunk ||
         (pos.chunk == start.chunk && pos.frac >= start.frac));
}

void
ProfileCursor::seekFraction(double f)
{
    GPM_ASSERT(f >= 0.0 && f < 1.0);
    const ModeProfile &mp = prof.modes[0];
    start = Pos{};
    shifted = false;
    if (f > 0.0 && !mp.chunks.empty()) {
        double target =
            f * static_cast<double>(mp.totalInsts());
        auto chunk = static_cast<std::size_t>(
            target / static_cast<double>(mp.chunkInsts));
        chunk = std::min(chunk, mp.chunks.size() - 1);
        std::uint64_t this_chunk = chunk + 1 == mp.chunks.size()
            ? mp.lastChunkInsts
            : mp.chunkInsts;
        double frac = (target -
                       static_cast<double>(chunk) *
                           static_cast<double>(mp.chunkInsts)) /
            static_cast<double>(this_chunk);
        start.chunk = chunk;
        start.frac = std::clamp(frac, 0.0, 1.0);
        shifted = true;
    }
    cur = start;
    instsAcc = 0.0;
}

bool
ProfileCursor::finished() const
{
    return posFinished(cur, prof.modes[0].chunks.size());
}

double
ProfileCursor::instructionsDone() const
{
    const ModeProfile &mp = prof.modes[0];
    if (shifted)
        return std::min(instsAcc,
                        static_cast<double>(mp.totalInsts()));
    if (finished())
        return static_cast<double>(mp.totalInsts());
    double insts =
        static_cast<double>(cur.chunk) *
        static_cast<double>(mp.chunkInsts);
    std::uint64_t this_chunk = cur.chunk + 1 == mp.chunks.size()
        ? mp.lastChunkInsts
        : mp.chunkInsts;
    return insts + cur.frac * static_cast<double>(this_chunk);
}

double
ProfileCursor::progress() const
{
    double total = static_cast<double>(prof.modes[0].totalInsts());
    if (total <= 0.0)
        return 1.0;
    return instructionsDone() / total;
}

void
ProfileCursor::rewind()
{
    cur = start;
    instsAcc = 0.0;
}

ProfileCursor::Delta
ProfileCursor::advanceFrom(Pos &pos, MicroSec dt_us, PowerMode m,
                           double dilation) const
{
    GPM_ASSERT(m < prof.modes.size());
    GPM_ASSERT(dilation >= 1.0);
    const ModeProfile &mp = prof.modes[m];
    Delta d;
    double remaining_ps = dt_us * 1e6; // us -> ps

    while (remaining_ps > 0.0 &&
           !posFinished(pos, mp.chunks.size())) {
        const ChunkRecord &c = mp.chunks[pos.chunk];
        std::uint64_t this_chunk_insts =
            pos.chunk + 1 == mp.chunks.size() ? mp.lastChunkInsts
                                              : mp.chunkInsts;
        // A wrapped shifted replay stops mid-chunk at the start
        // fraction; everywhere else the chunk runs to its end.
        double end_frac =
            shifted && pos.wrapped && pos.chunk == start.chunk
            ? start.frac
            : 1.0;
        double chunk_ps = static_cast<double>(c.timePs) * dilation;
        double rem_frac = end_frac - pos.frac;
        double rem_ps = chunk_ps * rem_frac;

        if (rem_ps <= remaining_ps) {
            // Finish the chunk (or the final partial chunk).
            d.instructions +=
                rem_frac * static_cast<double>(this_chunk_insts);
            d.energyJ += rem_frac * c.energyJ;
            d.l2Accesses +=
                rem_frac * static_cast<double>(c.l2Accesses);
            d.l2Misses += rem_frac * static_cast<double>(c.l2Misses);
            remaining_ps -= rem_ps;
            if (end_frac < 1.0) {
                pos.frac = end_frac; // back at start: finished
            } else {
                pos.chunk++;
                pos.frac = 0.0;
                if (shifted && !pos.wrapped &&
                    pos.chunk >= mp.chunks.size()) {
                    pos.chunk = 0;
                    pos.wrapped = true;
                }
            }
        } else {
            double f = remaining_ps / chunk_ps;
            d.instructions +=
                f * static_cast<double>(this_chunk_insts);
            d.energyJ += f * c.energyJ;
            d.l2Accesses += f * static_cast<double>(c.l2Accesses);
            d.l2Misses += f * static_cast<double>(c.l2Misses);
            pos.frac += f;
            remaining_ps = 0.0;
        }
    }

    d.usedUs = dt_us - remaining_ps * 1e-6;
    d.finished = posFinished(pos, mp.chunks.size());
    return d;
}

ProfileCursor::Delta
ProfileCursor::advance(MicroSec dt_us, PowerMode m, double dilation)
{
    Delta d = advanceFrom(cur, dt_us, m, dilation);
    instsAcc += d.instructions;
    return d;
}

ProfileCursor::Delta
ProfileCursor::peek(MicroSec dt_us, PowerMode m, double dilation) const
{
    Pos tmp = cur;
    return advanceFrom(tmp, dt_us, m, dilation);
}

// ---------------------------------------------------------------
// ProfileLibrary
// ---------------------------------------------------------------

namespace
{
constexpr std::uint32_t profileMagic = 0x47504d50; // "GPMP"
constexpr std::uint32_t profileVersion = 3;

/** Bumped when profile *semantics* change without a WorkloadSpec /
 *  DvfsTable / CoreConfig knob changing (e.g. a core-model fix);
 *  mixed into workloadFingerprint() so stale store entries
 *  re-address instead of serving old numbers. */
constexpr std::uint64_t storeSemanticVersion = 1;

std::uint64_t
elapsedMs(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** FNV-1a accumulator shared by the fingerprint functions. */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ULL;

    void mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    /** Doubles are mixed at fixed precision, matching the legacy
     *  suite fingerprint's idiom. */
    void mixD(double v) { mix(static_cast<std::uint64_t>(v * 1e6)); }
    void mixS(const std::string &s)
    {
        mix(s.size());
        for (char c : s)
            mix(static_cast<unsigned char>(c));
    }
};

} // namespace

ProfileLibrary::ProfileLibrary(const DvfsTable &dvfs_,
                               double length_scale)
    : dvfs(dvfs_), lengthScale(length_scale)
{
}

ProfileLibrary::~ProfileLibrary() = default;

std::uint64_t
ProfileLibrary::fingerprint() const
{
    // FNV-1a over the parameters that determine profile contents.
    Fnv f;
    f.mix(profileVersion);
    f.mix(static_cast<std::uint64_t>(lengthScale * 1e6));
    f.mix(dvfs.numModes());
    for (std::size_t m = 0; m < dvfs.numModes(); m++) {
        f.mix(static_cast<std::uint64_t>(
            dvfs.frequency(static_cast<PowerMode>(m))));
        f.mix(static_cast<std::uint64_t>(
            dvfs.voltage(static_cast<PowerMode>(m)) * 1e6));
    }
    for (const auto &w : spec2000Suite()) {
        f.mix(w.seed);
        f.mix(w.totalInsts);
        f.mix(w.phases.size());
        for (const auto &ph : w.phases) {
            f.mix(ph.lengthInsts);
            f.mixD(ph.fracLoad);
            f.mixD(ph.coldFrac);
            f.mixD(ph.chainFrac);
            f.mixD(ph.strideFrac);
            f.mixD(ph.fracFp);
            f.mixD(ph.branchBias);
        }
    }
    return f.h;
}

std::uint64_t
ProfileLibrary::workloadFingerprint(const WorkloadSpec &w) const
{
    Fnv f;
    f.mix(storeSemanticVersion);
    f.mixD(lengthScale);
    f.mix(dvfs.numModes());
    for (std::size_t m = 0; m < dvfs.numModes(); m++) {
        f.mix(static_cast<std::uint64_t>(
            dvfs.frequency(static_cast<PowerMode>(m))));
        f.mixD(dvfs.voltage(static_cast<PowerMode>(m)));
    }

    // Every WorkloadSpec field: any change re-addresses the entry.
    f.mixS(w.name);
    f.mix(w.isFp ? 1 : 0);
    f.mixS(w.memClass);
    f.mix(w.totalInsts);
    f.mix(w.seed);
    f.mix(w.codeBytes);
    f.mix(w.hotBytes);
    f.mix(w.warmBytes);
    f.mix(w.coldBytes);
    f.mix(w.streamBytes);
    f.mix(w.phases.size());
    for (const auto &ph : w.phases) {
        f.mix(ph.lengthInsts);
        f.mixD(ph.fracLoad);
        f.mixD(ph.fracStore);
        f.mixD(ph.fracBranch);
        f.mixD(ph.fracFp);
        f.mixD(ph.fracFpMul);
        f.mixD(ph.fracFpDiv);
        f.mixD(ph.fracIntMul);
        f.mixD(ph.depP);
        f.mixD(ph.dep2Prob);
        f.mixD(ph.strideFrac);
        f.mixD(ph.hotFrac);
        f.mixD(ph.warmFrac);
        f.mixD(ph.coldFrac);
        f.mixD(ph.chainFrac);
        f.mixD(ph.branchBias);
    }

    // Every CoreConfig knob the detailed core model reads.
    f.mix(cfg.dispatchWidth);
    f.mix(cfg.fetchWidth);
    f.mix(cfg.windowSize);
    f.mix(cfg.rsMem);
    f.mix(cfg.rsFix);
    f.mix(cfg.rsFp);
    f.mix(cfg.physGpr);
    f.mix(cfg.physFpr);
    f.mix(cfg.archGpr);
    f.mix(cfg.archFpr);
    f.mix(cfg.numLsu);
    f.mix(cfg.numFxu);
    f.mix(cfg.numFpu);
    f.mix(cfg.numBru);
    f.mix(cfg.mshrs);
    f.mix(cfg.frontendDelay);
    f.mix(cfg.redirectPenalty);
    f.mix(cfg.bpredEntries);
    for (const CacheConfig *c : {&cfg.l1d, &cfg.l1i, &cfg.l2}) {
        f.mix(c->sizeBytes);
        f.mix(c->ways);
        f.mix(c->blockBytes);
    }
    f.mix(cfg.l1LatCycles);
    f.mixD(cfg.l2LatNs);
    f.mixD(cfg.memLatNs);
    f.mix(cfg.latIntAlu);
    f.mix(cfg.latIntMul);
    f.mix(cfg.latFpAlu);
    f.mix(cfg.latFpMul);
    f.mix(cfg.latFpDiv);
    f.mix(cfg.latBranch);
    f.mix(cfg.latAgen);
    return f.h;
}

ProfileLibrary::Slot &
ProfileLibrary::slotForLocked(const std::string &name)
{
    auto &up = slots[name];
    if (!up) {
        up = std::make_unique<Slot>();
        order.push_back(up.get());
    }
    return *up;
}

void
ProfileLibrary::publishLocked(Slot &s, WorkloadProfile &&p,
                              bool fromDisk, std::uint64_t build_ms)
{
    s.profile = std::move(p);
    s.state = Slot::State::Ready;
    counters.ready++;
    if (fromDisk) {
        counters.diskHits++;
    } else {
        counters.builds++;
        counters.buildMs += build_ms;
    }
    cv.notify_all();
}

void
ProfileLibrary::attachStore(const std::string &dir,
                            BreakerOptions breakerOpts)
{
    store = std::make_unique<ProfileStore>(dir, breakerOpts);
}

const WorkloadProfile &
ProfileLibrary::get(const std::string &name)
{
    std::unique_lock<std::mutex> lock(mtx);
    Slot &s = slotForLocked(name);
    // Wait out another thread's in-flight build; if that build
    // fails (slot reverts to Empty) the first waiter claims it.
    while (s.state == Slot::State::Building)
        cv.wait(lock);
    if (s.state == Slot::State::Ready)
        return s.profile;
    s.state = Slot::State::Building;
    lock.unlock();

    WorkloadProfile p;
    bool from_disk = false;
    std::uint64_t ms = 0;
    try {
        const WorkloadSpec &spec = workload(name);
        std::uint64_t fp = workloadFingerprint(spec);
        if (store && store->load(name, fp, p)) {
            from_disk = true;
        } else {
            auto t0 = std::chrono::steady_clock::now();
            Profiler profiler(dvfs, cfg);
            p = profiler.profileWorkload(spec, lengthScale);
            ms = elapsedMs(t0);
            if (store)
                store->save(name, fp, p);
        }
    } catch (...) {
        lock.lock();
        s.state = Slot::State::Empty;
        cv.notify_all();
        throw;
    }
    lock.lock();
    publishLocked(s, std::move(p), from_disk, ms);
    return s.profile;
}

void
ProfileLibrary::buildSuite(std::size_t concurrency)
{
    struct Pending
    {
        const WorkloadSpec *spec;
        Slot *slot;
        std::vector<ModeProfile> modes;
        std::vector<std::uint64_t> modeMs;
    };
    std::vector<Pending> pending;     // claimed by us, suite order
    std::vector<std::string> foreign; // being built by others

    {
        std::unique_lock<std::mutex> lock(mtx);
        for (const auto &w : spec2000Suite()) {
            Slot &s = slotForLocked(w.name);
            if (s.state == Slot::State::Ready)
                continue;
            if (s.state == Slot::State::Building) {
                foreign.push_back(w.name);
                continue;
            }
            s.state = Slot::State::Building;
            pending.push_back({&w, &s, {}, {}});
        }
    }

    const std::size_t n_modes = dvfs.numModes();
    // Everything between claiming the slots and publishing them runs
    // under one catch: any throw (store probe, resize, a build, the
    // consistency check) reverts the still-Building slots we claimed
    // to Empty and wakes waiters, so no get() deadlocks on a slot
    // with no builder behind it.
    try {
        // Probe the store serially first: a disk read is cheap next
        // to a detailed-core run, and publishing early unblocks
        // waiters.
        if (store) {
            for (auto it = pending.begin(); it != pending.end();) {
                WorkloadProfile p;
                if (store->load(it->spec->name,
                                workloadFingerprint(*it->spec), p)) {
                    std::unique_lock<std::mutex> lock(mtx);
                    publishLocked(*it->slot, std::move(p), true, 0);
                    it = pending.erase(it);
                } else {
                    ++it;
                }
            }
        }

        if (!pending.empty()) {
            inform("building %zu suite profiles (%zu detailed-core "
                   "runs, concurrency %zu)",
                   pending.size(), pending.size() * n_modes,
                   concurrency ? concurrency : defaultConcurrency());
            for (auto &pw : pending) {
                pw.modes.resize(n_modes);
                pw.modeMs.resize(n_modes);
            }
            Profiler profiler(dvfs, cfg);
            // One task per (workload x mode): the modes of one
            // workload are independent deterministic runs, and a
            // flat task list keeps all cores busy even when one
            // workload dominates the suite.
            gpm::parallelFor(
                concurrency, pending.size() * n_modes,
                [&](std::size_t t) {
                    Pending &pw = pending[t / n_modes];
                    auto mi = static_cast<PowerMode>(t % n_modes);
                    auto t0 = std::chrono::steady_clock::now();
                    pw.modes[mi] = profiler.profileMode(
                        *pw.spec, mi, lengthScale);
                    pw.modeMs[mi] = elapsedMs(t0);
                });
            // Assemble + publish in suite order: deterministic
            // slots, bitwise-identical to a serial
            // profileWorkload() loop.
            for (auto &pw : pending) {
                WorkloadProfile p;
                p.name = pw.spec->name;
                p.modes = std::move(pw.modes);
                Profiler::checkModeConsistency(p);
                std::uint64_t ms = 0;
                for (std::uint64_t m : pw.modeMs)
                    ms += m;
                if (store)
                    store->save(p.name,
                                workloadFingerprint(*pw.spec), p);
                std::unique_lock<std::mutex> lock(mtx);
                publishLocked(*pw.slot, std::move(p), false, ms);
            }
        }
    } catch (...) {
        std::unique_lock<std::mutex> lock(mtx);
        // Published slots are Ready and stay; only revert the ones
        // still waiting on us (we claimed them, so nobody else can
        // have moved them).
        for (auto &pw : pending)
            if (pw.slot->state == Slot::State::Building)
                pw.slot->state = Slot::State::Empty;
        cv.notify_all();
        throw;
    }

    // Profiles some other thread was mid-building when we scanned:
    // get() waits per entry (and rebuilds if that build failed).
    for (const std::string &name : foreign)
        get(name);
}

void
ProfileLibrary::loadOrBuild(const std::string &path,
                            std::size_t concurrency)
{
    if (load(path))
        return;
    inform("profile cache '%s' missing or stale; building suite "
           "profiles (one-time)",
           path.c_str());
    buildSuite(concurrency);
    save(path);
}

void
ProfileLibrary::save(const std::string &path) const
{
    // Snapshot under the lock; Ready profiles are immutable and
    // their addresses stable, so serialization can run unlocked.
    std::vector<const WorkloadProfile *> ready;
    {
        std::unique_lock<std::mutex> lock(mtx);
        for (const Slot *s : order)
            if (s->state == Slot::State::Ready)
                ready.push_back(&s->profile);
    }

    std::string out;
    binio::putLe(out, profileMagic, 4);
    binio::putLe(out, profileVersion, 4);
    binio::putLe(out, fingerprint(), 8);
    binio::putLe(out, ready.size(), 4);
    for (const WorkloadProfile *p : ready) {
        binio::putLe(out, p->name.size(), 4);
        out += p->name;
        binio::putLe(out, p->modes.size(), 4);
        for (const auto &mp : p->modes) {
            binio::putLe(out, mp.chunkInsts, 8);
            binio::putLe(out, mp.lastChunkInsts, 8);
            binio::putLe(out, mp.chunks.size(), 4);
            out.append(
                reinterpret_cast<const char *>(mp.chunks.data()),
                mp.chunks.size() * sizeof(ChunkRecord));
        }
    }
    if (!binio::writeFileAtomic(path, out))
        warn("cannot write profile cache '%s'", path.c_str());
}

bool
ProfileLibrary::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    auto fail = [&]() {
        std::fclose(f);
        return false;
    };
    auto r32 = [f](std::uint32_t &v) {
        return std::fread(&v, 4, 1, f) == 1;
    };
    auto r64 = [f](std::uint64_t &v) {
        return std::fread(&v, 8, 1, f) == 1;
    };
    std::uint32_t magic = 0, version = 0, count = 0;
    std::uint64_t fp = 0;
    if (!r32(magic) || magic != profileMagic)
        return fail();
    if (!r32(version) || version != profileVersion)
        return fail();
    if (!r64(fp) || fp != fingerprint())
        return fail();
    if (!r32(count) || count > 1024)
        return fail();
    std::vector<WorkloadProfile> loaded;
    for (std::uint32_t i = 0; i < count; i++) {
        WorkloadProfile p;
        std::uint32_t name_len = 0;
        if (!r32(name_len) || name_len > 256)
            return fail();
        p.name.resize(name_len);
        if (std::fread(p.name.data(), 1, name_len, f) != name_len)
            return fail();
        std::uint32_t n_modes = 0;
        if (!r32(n_modes) || n_modes > 64)
            return fail();
        for (std::uint32_t m = 0; m < n_modes; m++) {
            ModeProfile mp;
            std::uint32_t n_chunks = 0;
            if (!r64(mp.chunkInsts) || !r64(mp.lastChunkInsts) ||
                !r32(n_chunks) || n_chunks > 100'000'000)
                return fail();
            mp.chunks.resize(n_chunks);
            if (std::fread(mp.chunks.data(), sizeof(ChunkRecord),
                           n_chunks, f) != n_chunks)
                return fail();
            p.modes.push_back(std::move(mp));
        }
        loaded.push_back(std::move(p));
    }
    std::fclose(f);

    // Merge into the live table: publish into Empty slots only.
    // load() may run concurrently with get() (gpmd prewarms in the
    // background while serving), so never destroy or overwrite
    // slots — callers hold returned profile references, and waiters
    // are parked on Building entries. Ready/Building slots already
    // have equivalent content in flight (the fingerprint check above
    // guarantees the file matches this library's configuration).
    std::unique_lock<std::mutex> lock(mtx);
    for (WorkloadProfile &p : loaded) {
        Slot &s = slotForLocked(p.name);
        if (s.state != Slot::State::Empty)
            continue;
        publishLocked(s, std::move(p), true, 0);
    }
    return true;
}

ProfileLibraryStats
ProfileLibrary::stats() const
{
    ProfileLibraryStats s;
    {
        std::unique_lock<std::mutex> lock(mtx);
        s = counters;
    }
    if (store) {
        ProfileStoreStats ss = store->stats();
        s.storeQuarantined = ss.quarantined;
        s.storeWriteFailures = ss.writeFailures;
        s.storeBreakerRefusals = ss.breakerRefusals;
        s.storeBreakerOpens = ss.breakerOpens;
        s.storeBreakerState = ss.breakerState;
    }
    return s;
}

} // namespace gpm
