/**
 * @file
 * ExperimentRunner: the harness the per-figure benchmarks drive.
 * Binds a ProfileLibrary + DvfsTable + SimConfig, caches the
 * all-Turbo reference run per benchmark combination, and evaluates
 * dynamic policies, optimistic-static assignments and budget sweeps
 * — serially point-by-point, or fanned across a thread pool with
 * sweep().
 */

#ifndef GPM_METRICS_EXPERIMENT_HH
#define GPM_METRICS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/static_planner.hh"
#include "metrics/metrics.hh"
#include "sim/cmp_sim.hh"
#include "trace/phase_profile.hh"
#include "util/cancel.hh"
#include "util/expected.hh"

namespace gpm
{

/**
 * Why a SweepSpec was rejected before any simulation ran: the index
 * of the offending point and a human-readable reason. Service-layer
 * callers turn this into an "invalid scenario" response instead of
 * dying on a fatal() deep inside a run.
 */
struct SweepError
{
    std::size_t pointIndex = 0;
    std::string message;
    /** True when the sweep was abandoned by a CancelToken rather
     *  than rejected: at least one point was skipped, and the
     *  partial results were discarded. */
    bool cancelled = false;
};

/** One evaluated (policy, budget) point. */
struct PolicyEval
{
    std::string policy;
    double budgetFrac = 1.0;
    RunMetrics metrics;
    /** Prediction errors (only meaningful for predictive policies). */
    double predPowerError = 0.0;
    double predBipsError = 0.0;
    ManagerStats managerStats;
};

/** One independent (combo, policy, budget) point of a sweep. */
struct SweepPoint
{
    std::vector<std::string> combo;
    /** Policy name; "Static" routes through evaluateStatic(). */
    std::string policy;
    double budgetFrac = 1.0;
    /** Fitting rule when policy == "Static". */
    StaticFit staticFit = StaticFit::Peak;
};

/**
 * An ordered list of sweep points. Results come back in exactly
 * this order regardless of how many threads evaluate them, so a
 * spec is also the deterministic serial-equivalence contract:
 * sweep(spec, k) is bitwise-identical to evaluating the points one
 * by one in spec order.
 */
struct SweepSpec
{
    std::vector<SweepPoint> points;

    /** Append one point. */
    void add(std::vector<std::string> combo, std::string policy,
             double budget_frac, StaticFit fit = StaticFit::Peak);

    /**
     * Append the full cross product combos x policies x budgets in
     * row-major order (combo outermost, budget innermost) — the
     * iteration order of the pre-sweep serial benchmarks.
     */
    void addGrid(const std::vector<std::vector<std::string>> &combos,
                 const std::vector<std::string> &policies,
                 const std::vector<double> &budget_fracs);

    std::size_t size() const { return points.size(); }
    bool empty() const { return points.empty(); }
};

/**
 * Drives CmpSim for whole experiments.
 *
 * Thread-safety contract: all evaluation entry points (evaluate,
 * evaluateStatic, curve, timeline, reference, referencePowerW,
 * sweep) may be called concurrently on one runner. The per-combo
 * cache is a map of once-initialized entries behind a shared_mutex;
 * each entry's CmpSim is built and its all-Turbo reference run
 * executed exactly once under std::call_once, and CmpSim itself is
 * reentrant (see sim/cmp_sim.hh). The ProfileLibrary performs its
 * own locking.
 */
class ExperimentRunner
{
  public:
    /**
     * @param lib   profile library (profiles built/loaded on demand)
     * @param dvfs  mode table
     * @param cfg   simulator configuration for every run
     */
    ExperimentRunner(ProfileLibrary &lib, const DvfsTable &dvfs,
                     SimConfig cfg = SimConfig{});

    /** Profiles for a combination (built on demand). */
    std::vector<const WorkloadProfile *>
    profilesFor(const std::vector<std::string> &combo);

    /** All-Turbo reference result for a combination (cached). */
    const SimResult &reference(const std::vector<std::string> &combo);

    /** All-Turbo average chip power — the budget base [W]. */
    Watts referencePowerW(const std::vector<std::string> &combo);

    /**
     * Evaluate a dynamic policy at a constant budget fraction.
     * Policy names: MaxBIPS, MaxBIPS-BnB, Priority, PullHiPushLo,
     * ChipWideDVFS, Oracle.
     */
    PolicyEval evaluate(const std::vector<std::string> &combo,
                        const std::string &policy, double budget_frac);

    /**
     * Evaluate the optimistic static assignment (paper Section 5.7):
     * best fixed modes by whole-run oracle stats, then simulated.
     * By default the fixed assignment must fit the budget at its
     * peak explore window (a static configuration has no controller
     * to correct overshoots); pass StaticFit::Average for the
     * optimistic average-fitting ablation.
     */
    PolicyEval evaluateStatic(const std::vector<std::string> &combo,
                              double budget_frac,
                              StaticFit fit = StaticFit::Peak);

    /** Policy curve: one PolicyEval per budget fraction (serial). */
    std::vector<PolicyEval>
    curve(const std::vector<std::string> &combo,
          const std::string &policy,
          const std::vector<double> &budget_fracs);

    /**
     * Evaluate every point of @p spec, fanning independent points
     * across a thread pool, and return the PolicyEvals in spec
     * order. Results are bitwise-identical to a serial
     * evaluate()/evaluateStatic() loop over the same points for any
     * concurrency (every point is an independent, deterministic
     * simulation; threads only decide *when* a point runs, never
     * what it computes).
     *
     * Cooperative cancellation: when @p cancel is non-null it is
     * checked before every point; once it reports cancelled the
     * remaining points are skipped and the returned vector is
     * truncated to the number of points that completed — shorter
     * than spec.size() signals cancellation, and the partial
     * contents are not meaningful (use trySweep for a structured
     * outcome). Completed points are unaffected — cancellation
     * decides *whether* a point runs, never what it computes.
     *
     * @param concurrency thread count; 0 = GPM_THREADS env or
     *        hardware concurrency
     * @param cancel optional cooperative cancellation token
     */
    std::vector<PolicyEval> sweep(const SweepSpec &spec,
                                  std::size_t concurrency = 0,
                                  const CancelToken *cancel = nullptr);

    /**
     * sweep() with a structured error channel: validate() the spec
     * up front and return a SweepError instead of fatal()ing when a
     * point names an unknown policy or workload, has an empty combo,
     * or a non-positive/non-finite budget fraction. If @p cancel
     * fires mid-sweep (at least one point was skipped) the partial
     * result is discarded and a SweepError with cancelled = true is
     * returned instead. On success the result is exactly what
     * sweep() returns.
     */
    Expected<std::vector<PolicyEval>, SweepError>
    trySweep(const SweepSpec &spec, std::size_t concurrency = 0,
             const CancelToken *cancel = nullptr);

    /**
     * Check every point of @p spec against the known policy and
     * workload names without running anything. Empty specs are
     * valid (they sweep to an empty result).
     */
    static std::optional<SweepError> validate(const SweepSpec &spec);

    /**
     * Full timeline run of a policy under an arbitrary budget
     * schedule (Figures 3 and 6).
     */
    SimResult timeline(const std::vector<std::string> &combo,
                       const std::string &policy,
                       const BudgetSchedule &budget);

    /** The simulator configuration in force. */
    const SimConfig &config() const { return cfg; }

  private:
    struct ComboCache
    {
        std::once_flag init;
        std::unique_ptr<CmpSim> sim;
        SimResult turboRef;
        Watts refW = 0.0;
    };

    ComboCache &cacheFor(const std::vector<std::string> &combo);
    static std::string keyOf(const std::vector<std::string> &combo);

    ProfileLibrary &lib;
    const DvfsTable &dvfs;
    SimConfig cfg;
    Watts idlePowerW;
    /** Guards the cache *map*; entry initialization is per-entry
     *  via ComboCache::init so distinct combos build in parallel. */
    std::shared_mutex cacheMtx;
    std::map<std::string, std::unique_ptr<ComboCache>> cache;
};

} // namespace gpm

#endif // GPM_METRICS_EXPERIMENT_HH
