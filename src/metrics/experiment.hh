/**
 * @file
 * ExperimentRunner: the harness the per-figure benchmarks drive.
 * Binds a ProfileLibrary + DvfsTable + SimConfig, caches the
 * all-Turbo reference run per benchmark combination, and evaluates
 * dynamic policies, optimistic-static assignments and budget sweeps.
 */

#ifndef GPM_METRICS_EXPERIMENT_HH
#define GPM_METRICS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/static_planner.hh"
#include "metrics/metrics.hh"
#include "sim/cmp_sim.hh"
#include "trace/phase_profile.hh"

namespace gpm
{

/** One evaluated (policy, budget) point. */
struct PolicyEval
{
    std::string policy;
    double budgetFrac = 1.0;
    RunMetrics metrics;
    /** Prediction errors (only meaningful for predictive policies). */
    double predPowerError = 0.0;
    double predBipsError = 0.0;
    ManagerStats managerStats;
};

/**
 * Drives CmpSim for whole experiments. Not thread-safe (profiles are
 * built lazily through the shared library).
 */
class ExperimentRunner
{
  public:
    /**
     * @param lib   profile library (profiles built/loaded on demand)
     * @param dvfs  mode table
     * @param cfg   simulator configuration for every run
     */
    ExperimentRunner(ProfileLibrary &lib, const DvfsTable &dvfs,
                     SimConfig cfg = SimConfig{});

    /** Profiles for a combination (built on demand). */
    std::vector<const WorkloadProfile *>
    profilesFor(const std::vector<std::string> &combo);

    /** All-Turbo reference result for a combination (cached). */
    const SimResult &reference(const std::vector<std::string> &combo);

    /** All-Turbo average chip power — the budget base [W]. */
    Watts referencePowerW(const std::vector<std::string> &combo);

    /**
     * Evaluate a dynamic policy at a constant budget fraction.
     * Policy names: MaxBIPS, MaxBIPS-BnB, Priority, PullHiPushLo,
     * ChipWideDVFS, Oracle.
     */
    PolicyEval evaluate(const std::vector<std::string> &combo,
                        const std::string &policy, double budget_frac);

    /**
     * Evaluate the optimistic static assignment (paper Section 5.7):
     * best fixed modes by whole-run oracle stats, then simulated.
     * By default the fixed assignment must fit the budget at its
     * peak explore window (a static configuration has no controller
     * to correct overshoots); pass StaticFit::Average for the
     * optimistic average-fitting ablation.
     */
    PolicyEval evaluateStatic(const std::vector<std::string> &combo,
                              double budget_frac,
                              StaticFit fit = StaticFit::Peak);

    /** Policy curve: one PolicyEval per budget fraction. */
    std::vector<PolicyEval>
    curve(const std::vector<std::string> &combo,
          const std::string &policy,
          const std::vector<double> &budget_fracs);

    /**
     * Full timeline run of a policy under an arbitrary budget
     * schedule (Figures 3 and 6).
     */
    SimResult timeline(const std::vector<std::string> &combo,
                       const std::string &policy,
                       const BudgetSchedule &budget);

    /** The simulator configuration in force. */
    const SimConfig &config() const { return cfg; }

  private:
    struct ComboCache
    {
        std::unique_ptr<CmpSim> sim;
        SimResult turboRef;
        Watts refW = 0.0;
    };

    ComboCache &cacheFor(const std::vector<std::string> &combo);
    static std::string keyOf(const std::vector<std::string> &combo);

    ProfileLibrary &lib;
    const DvfsTable &dvfs;
    SimConfig cfg;
    Watts idlePowerW;
    std::map<std::string, ComboCache> cache;
};

} // namespace gpm

#endif // GPM_METRICS_EXPERIMENT_HH
