#include "metrics.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace gpm
{

std::vector<double>
threadSpeedups(const SimResult &run, const SimResult &reference)
{
    GPM_ASSERT(run.coreInstructions.size() ==
               reference.coreInstructions.size());
    std::vector<double> run_bips = run.coreBips();
    std::vector<double> ref_bips = reference.coreBips();
    std::vector<double> speedups;
    speedups.reserve(run_bips.size());
    for (std::size_t c = 0; c < run_bips.size(); c++) {
        if (ref_bips[c] <= 0.0) {
            speedups.push_back(1.0);
            continue;
        }
        speedups.push_back(std::max(run_bips[c] / ref_bips[c], 1e-9));
    }
    return speedups;
}

RunMetrics
computeMetrics(const SimResult &run, const SimResult &reference,
               Watts budget_w)
{
    RunMetrics m;
    double ref_bips = reference.chipBips();
    m.chipBips = run.chipBips();
    if (ref_bips > 0.0)
        m.perfDegradation = 1.0 - m.chipBips / ref_bips;

    std::vector<double> speedups = threadSpeedups(run, reference);
    m.weightedSlowdown = 1.0 - harmonicMeanOf(speedups);
    m.weightedSpeedupLoss = 1.0 - meanOf(speedups);

    m.avgChipPowerW = run.avgCorePowerW();
    Watts ref_power = reference.avgCorePowerW();
    if (ref_power > 0.0)
        m.powerSavings = 1.0 - m.avgChipPowerW / ref_power;
    if (budget_w > 0.0)
        m.powerOverBudget = m.avgChipPowerW / budget_w;
    return m;
}

} // namespace gpm
