#include "experiment.hh"

#include "core/static_planner.hh"
#include "util/logging.hh"

namespace gpm
{

ExperimentRunner::ExperimentRunner(ProfileLibrary &lib_,
                                   const DvfsTable &dvfs_,
                                   SimConfig cfg_)
    : lib(lib_), dvfs(dvfs_), cfg(cfg_)
{
    CorePowerModel pm(CorePowerParams::classic(), dvfs);
    idlePowerW = pm.stallPower(modes::Turbo);
}

std::string
ExperimentRunner::keyOf(const std::vector<std::string> &combo)
{
    std::string key;
    for (const auto &n : combo)
        key += n + "|";
    return key;
}

std::vector<const WorkloadProfile *>
ExperimentRunner::profilesFor(const std::vector<std::string> &combo)
{
    GPM_ASSERT(!combo.empty());
    std::vector<const WorkloadProfile *> ps;
    ps.reserve(combo.size());
    for (const auto &name : combo)
        ps.push_back(&lib.get(name));
    return ps;
}

ExperimentRunner::ComboCache &
ExperimentRunner::cacheFor(const std::vector<std::string> &combo)
{
    std::string key = keyOf(combo);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    ComboCache cc;
    cc.sim =
        std::make_unique<CmpSim>(profilesFor(combo), dvfs, cfg);
    std::vector<PowerMode> all_turbo(combo.size(), modes::Turbo);
    cc.turboRef = cc.sim->runStatic(all_turbo);
    cc.refW = cc.turboRef.avgCorePowerW();
    return cache.emplace(key, std::move(cc)).first->second;
}

const SimResult &
ExperimentRunner::reference(const std::vector<std::string> &combo)
{
    return cacheFor(combo).turboRef;
}

Watts
ExperimentRunner::referencePowerW(
    const std::vector<std::string> &combo)
{
    return cacheFor(combo).refW;
}

PolicyEval
ExperimentRunner::evaluate(const std::vector<std::string> &combo,
                           const std::string &policy,
                           double budget_frac)
{
    ComboCache &cc = cacheFor(combo);
    GlobalManager mgr(dvfs, makePolicy(policy), cfg.exploreUs,
                      idlePowerW);
    BudgetSchedule budget(budget_frac);
    SimResult run = cc.sim->run(mgr, budget, cc.refW);

    PolicyEval ev;
    ev.policy = policy;
    ev.budgetFrac = budget_frac;
    ev.metrics =
        computeMetrics(run, cc.turboRef, budget_frac * cc.refW);
    ev.predPowerError = run.predPowerError;
    ev.predBipsError = run.predBipsError;
    ev.managerStats = run.managerStats;
    return ev;
}

PolicyEval
ExperimentRunner::evaluateStatic(
    const std::vector<std::string> &combo, double budget_frac,
    StaticFit fit)
{
    ComboCache &cc = cacheFor(combo);
    auto profiles = profilesFor(combo);

    // Whole-run "native" stats per core per mode: the optimistic
    // oracle knowledge the paper grants static management.
    std::vector<std::vector<StaticModeStats>> per_core;
    for (const auto *p : profiles) {
        std::vector<StaticModeStats> row;
        for (std::size_t mi = 0; mi < dvfs.numModes(); mi++) {
            const ModeProfile &mp =
                p->at(static_cast<PowerMode>(mi));
            row.push_back({mp.avgPowerW(),
                           mp.peakPowerW(cfg.exploreUs), mp.bips()});
        }
        per_core.push_back(std::move(row));
    }

    Watts core_budget = budget_frac * cc.refW;
    std::vector<PowerMode> assign =
        planStaticAssignment(per_core, core_budget, fit);

    SimResult run = cc.sim->runStatic(assign);
    PolicyEval ev;
    ev.policy = "Static";
    ev.budgetFrac = budget_frac;
    ev.metrics =
        computeMetrics(run, cc.turboRef, budget_frac * cc.refW);
    return ev;
}

std::vector<PolicyEval>
ExperimentRunner::curve(const std::vector<std::string> &combo,
                        const std::string &policy,
                        const std::vector<double> &budget_fracs)
{
    std::vector<PolicyEval> evs;
    evs.reserve(budget_fracs.size());
    for (double b : budget_fracs) {
        if (policy == "Static")
            evs.push_back(evaluateStatic(combo, b));
        else
            evs.push_back(evaluate(combo, policy, b));
    }
    return evs;
}

SimResult
ExperimentRunner::timeline(const std::vector<std::string> &combo,
                           const std::string &policy,
                           const BudgetSchedule &budget)
{
    ComboCache &cc = cacheFor(combo);
    GlobalManager mgr(dvfs, makePolicy(policy), cfg.exploreUs,
                      idlePowerW);
    return cc.sim->run(mgr, budget, cc.refW);
}

} // namespace gpm
