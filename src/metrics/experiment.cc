#include "experiment.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/policies.hh"
#include "core/static_planner.hh"
#include "trace/workload.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace gpm
{

void
SweepSpec::add(std::vector<std::string> combo, std::string policy,
               double budget_frac, StaticFit fit)
{
    points.push_back(
        {std::move(combo), std::move(policy), budget_frac, fit});
}

void
SweepSpec::addGrid(const std::vector<std::vector<std::string>> &combos,
                   const std::vector<std::string> &policies,
                   const std::vector<double> &budget_fracs)
{
    points.reserve(points.size() +
                   combos.size() * policies.size() *
                       budget_fracs.size());
    for (const auto &c : combos)
        for (const auto &p : policies)
            for (double b : budget_fracs)
                add(c, p, b);
}

ExperimentRunner::ExperimentRunner(ProfileLibrary &lib_,
                                   const DvfsTable &dvfs_,
                                   SimConfig cfg_)
    : lib(lib_), dvfs(dvfs_), cfg(cfg_)
{
    CorePowerModel pm(CorePowerParams::classic(), dvfs);
    idlePowerW = pm.stallPower(modes::Turbo);
}

std::string
ExperimentRunner::keyOf(const std::vector<std::string> &combo)
{
    std::string key;
    for (const auto &n : combo)
        key += n + "|";
    return key;
}

std::vector<const WorkloadProfile *>
ExperimentRunner::profilesFor(const std::vector<std::string> &combo)
{
    GPM_ASSERT(!combo.empty());
    std::vector<const WorkloadProfile *> ps;
    ps.reserve(combo.size());
    for (const auto &name : combo)
        ps.push_back(&lib.get(name));
    return ps;
}

ExperimentRunner::ComboCache &
ExperimentRunner::cacheFor(const std::vector<std::string> &combo)
{
    std::string key = keyOf(combo);
    ComboCache *cc = nullptr;
    {
        std::shared_lock<std::shared_mutex> lock(cacheMtx);
        auto it = cache.find(key);
        if (it != cache.end())
            cc = it->second.get();
    }
    if (!cc) {
        std::unique_lock<std::shared_mutex> lock(cacheMtx);
        auto &slot = cache[key];
        if (!slot)
            slot = std::make_unique<ComboCache>();
        cc = slot.get();
    }
    // Build outside the map lock so distinct combos initialize in
    // parallel; threads needing *this* combo wait here.
    std::call_once(cc->init, [&] {
        cc->sim =
            std::make_unique<CmpSim>(profilesFor(combo), dvfs, cfg);
        std::vector<PowerMode> all_turbo(combo.size(), modes::Turbo);
        cc->turboRef = cc->sim->runStatic(all_turbo, false);
        cc->refW = cc->turboRef.avgCorePowerW();
    });
    return *cc;
}

const SimResult &
ExperimentRunner::reference(const std::vector<std::string> &combo)
{
    return cacheFor(combo).turboRef;
}

Watts
ExperimentRunner::referencePowerW(
    const std::vector<std::string> &combo)
{
    return cacheFor(combo).refW;
}

PolicyEval
ExperimentRunner::evaluate(const std::vector<std::string> &combo,
                           const std::string &policy,
                           double budget_frac)
{
    ComboCache &cc = cacheFor(combo);
    GlobalManager mgr(dvfs, makePolicy(policy), cfg.exploreUs,
                      idlePowerW);
    BudgetSchedule budget(budget_frac);
    SimResult run = cc.sim->run(mgr, budget, cc.refW, false);

    PolicyEval ev;
    ev.policy = policy;
    ev.budgetFrac = budget_frac;
    ev.metrics =
        computeMetrics(run, cc.turboRef, budget_frac * cc.refW);
    ev.predPowerError = run.predPowerError;
    ev.predBipsError = run.predBipsError;
    ev.managerStats = run.managerStats;
    return ev;
}

PolicyEval
ExperimentRunner::evaluateStatic(
    const std::vector<std::string> &combo, double budget_frac,
    StaticFit fit)
{
    ComboCache &cc = cacheFor(combo);
    auto profiles = profilesFor(combo);

    // Whole-run "native" stats per core per mode: the optimistic
    // oracle knowledge the paper grants static management.
    std::vector<std::vector<StaticModeStats>> per_core;
    for (const auto *p : profiles) {
        std::vector<StaticModeStats> row;
        for (std::size_t mi = 0; mi < dvfs.numModes(); mi++) {
            const ModeProfile &mp =
                p->at(static_cast<PowerMode>(mi));
            row.push_back({mp.avgPowerW(),
                           mp.peakPowerW(cfg.exploreUs), mp.bips()});
        }
        per_core.push_back(std::move(row));
    }

    Watts core_budget = budget_frac * cc.refW;
    std::vector<PowerMode> assign =
        planStaticAssignment(per_core, core_budget, fit);

    SimResult run = cc.sim->runStatic(assign, false);
    PolicyEval ev;
    ev.policy = "Static";
    ev.budgetFrac = budget_frac;
    ev.metrics =
        computeMetrics(run, cc.turboRef, budget_frac * cc.refW);
    return ev;
}

std::vector<PolicyEval>
ExperimentRunner::curve(const std::vector<std::string> &combo,
                        const std::string &policy,
                        const std::vector<double> &budget_fracs)
{
    std::vector<PolicyEval> evs;
    evs.reserve(budget_fracs.size());
    for (double b : budget_fracs) {
        if (policy == "Static")
            evs.push_back(evaluateStatic(combo, b));
        else
            evs.push_back(evaluate(combo, policy, b));
    }
    return evs;
}

std::optional<SweepError>
ExperimentRunner::validate(const SweepSpec &spec)
{
    for (std::size_t i = 0; i < spec.points.size(); i++) {
        const SweepPoint &p = spec.points[i];
        if (p.combo.empty())
            return SweepError{i, "empty benchmark combination"};
        for (const auto &name : p.combo)
            if (!hasWorkload(name))
                return SweepError{i,
                                  "unknown workload '" + name + "'"};
        if (p.policy != "Static" && !isPolicyName(p.policy))
            return SweepError{
                i, "unknown policy '" + p.policy + "'"};
        if (!std::isfinite(p.budgetFrac) || p.budgetFrac <= 0.0)
            return SweepError{
                i, "budget fraction must be finite and > 0"};
    }
    return std::nullopt;
}

Expected<std::vector<PolicyEval>, SweepError>
ExperimentRunner::trySweep(const SweepSpec &spec,
                           std::size_t concurrency,
                           const CancelToken *cancel)
{
    if (auto err = validate(spec))
        return Expected<std::vector<PolicyEval>,
                        SweepError>::failure(std::move(*err));
    auto out = sweep(spec, concurrency, cancel);
    if (out.size() < spec.points.size()) {
        SweepError err;
        err.pointIndex = out.size();
        err.message = "sweep cancelled after " +
            std::to_string(out.size()) + " of " +
            std::to_string(spec.points.size()) + " points";
        err.cancelled = true;
        return Expected<std::vector<PolicyEval>,
                        SweepError>::failure(std::move(err));
    }
    return out;
}

std::vector<PolicyEval>
ExperimentRunner::sweep(const SweepSpec &spec,
                        std::size_t concurrency,
                        const CancelToken *cancel)
{
    std::vector<PolicyEval> out(spec.points.size());
    if (spec.points.empty())
        return out;
    if (concurrency == 0)
        concurrency = defaultConcurrency();

    ThreadPool pool(concurrency);

    // Warm the per-combo caches first, in parallel over *unique*
    // combos: otherwise every thread whose point shares the first
    // combo would pile up on one call_once while other combos wait.
    std::vector<const SweepPoint *> unique_combos;
    {
        std::vector<std::string> seen;
        for (const auto &p : spec.points) {
            std::string key = keyOf(p.combo);
            if (std::find(seen.begin(), seen.end(), key) ==
                seen.end()) {
                seen.push_back(std::move(key));
                unique_combos.push_back(&p);
            }
        }
    }
    pool.parallelFor(unique_combos.size(), [&](std::size_t i) {
        if (cancel && cancel->cancelled())
            return;
        cacheFor(unique_combos[i]->combo);
    });

    // The cancellation checkpoint sits between points: a token that
    // fires mid-sweep stops further points from starting but never
    // interrupts one in flight, so every computed point is still
    // bitwise-identical to its serial evaluation.
    std::atomic<bool> skipped{false};
    pool.parallelFor(spec.points.size(), [&](std::size_t i) {
        if (cancel && cancel->cancelled()) {
            skipped.store(true, std::memory_order_relaxed);
            return;
        }
        const SweepPoint &p = spec.points[i];
        out[i] = p.policy == "Static"
            ? evaluateStatic(p.combo, p.budgetFrac, p.staticFit)
            : evaluate(p.combo, p.policy, p.budgetFrac);
    });
    if (skipped.load(std::memory_order_relaxed)) {
        // Count the completed prefix so trySweep can report how far
        // the sweep got, then truncate: a cancelled sweep returns
        // fewer results than points, never silent default entries.
        std::size_t done = 0;
        for (const auto &ev : out)
            if (!ev.policy.empty())
                done++;
        out.resize(std::min(done, out.size()));
    }
    return out;
}

SimResult
ExperimentRunner::timeline(const std::vector<std::string> &combo,
                           const std::string &policy,
                           const BudgetSchedule &budget)
{
    ComboCache &cc = cacheFor(combo);
    GlobalManager mgr(dvfs, makePolicy(policy), cfg.exploreUs,
                      idlePowerW);
    return cc.sim->run(mgr, budget, cc.refW, true);
}

} // namespace gpm
