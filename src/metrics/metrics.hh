/**
 * @file
 * Evaluation metrics used across the paper's figures: chip
 * performance degradation vs all-Turbo, weighted slowdowns from
 * per-thread speedups (harmonic and arithmetic means), power
 * savings, and budget-fit ratios.
 */

#ifndef GPM_METRICS_METRICS_HH
#define GPM_METRICS_METRICS_HH

#include <vector>

#include "sim/cmp_sim.hh"

namespace gpm
{

/** Metrics of one policy run against its all-Turbo reference. */
struct RunMetrics
{
    /** 1 - chipBIPS(policy) / chipBIPS(all-Turbo). */
    double perfDegradation = 0.0;
    /** 100% - harmonic mean of per-thread speedups (Luo et al.). */
    double weightedSlowdown = 0.0;
    /** 100% - arithmetic mean of per-thread speedups (Tullsen). */
    double weightedSpeedupLoss = 0.0;
    /** 1 - avgCorePower(policy) / avgCorePower(all-Turbo). */
    double powerSavings = 0.0;
    /** avgCorePower(policy) / budget (the "budget curve" value). */
    double powerOverBudget = 0.0;
    /** Average core power (the budgeted quantity) [W]. */
    Watts avgChipPowerW = 0.0;
    /** Chip throughput [BIPS]. */
    double chipBips = 0.0;
};

/**
 * Reduce a policy run against its reference.
 *
 * @param run       the policy (or static/chip-wide/oracle) result
 * @param reference the all-Turbo result of the same combination
 * @param budget_w  absolute budget in force (0 = no budget ratio)
 */
RunMetrics computeMetrics(const SimResult &run,
                          const SimResult &reference, Watts budget_w);

/** Per-thread speedups run/reference (same core order). */
std::vector<double> threadSpeedups(const SimResult &run,
                                   const SimResult &reference);

} // namespace gpm

#endif // GPM_METRICS_METRICS_HH
