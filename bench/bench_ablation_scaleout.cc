/**
 * @file
 * Ablation (paper Section 8 outlook: "more aggressive scale-out
 * strategies"): global management at 16/32/64 cores. The exhaustive
 * 3^N MaxBIPS search is infeasible there; the branch-and-bound
 * search keeps decisions far below the explore interval while
 * preserving exact results. Workloads are the Table 2 8-way set
 * replicated.
 */

#include <chrono>
#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();

    bench::banner("Ablation — scale-out to 16/32/64 cores",
                  "MaxBIPS-BnB vs chip-wide DVFS at an 80% budget; "
                  "decision latency must stay below the 500 us "
                  "explore interval.");

    auto base = combination("8way1");
    Table t({"Cores", "MaxBIPS-BnB degr.", "ChipWide degr.",
             "gap", "decision us (BnB)"});
    for (int reps : {1, 2, 4, 8}) {
        std::vector<std::string> combo;
        for (int r = 0; r < reps; r++)
            combo.insert(combo.end(), base.begin(), base.end());

        auto t0 = std::chrono::steady_clock::now();
        auto mb = runner.evaluate(combo, "MaxBIPS-BnB", 0.8);
        auto wall = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        double per_decision = mb.managerStats.decisions
            ? wall / static_cast<double>(mb.managerStats.decisions)
            : 0.0;
        auto cw = runner.evaluate(combo, "ChipWideDVFS", 0.8);
        t.addRow(
            {std::to_string(combo.size()),
             Table::pct(mb.metrics.perfDegradation),
             Table::pct(cw.metrics.perfDegradation),
             Table::pct(cw.metrics.perfDegradation -
                        mb.metrics.perfDegradation),
             Table::num(per_decision, 1) + " (sim+decide)"});
    }
    t.print();

    std::printf("\nExpected shape: the per-core policy's advantage "
                "over chip-wide grows with core count (paper "
                "Figure 11 trend), and BnB decisions remain "
                "tractable at 64 cores where exhaustive search "
                "(3^64 states) is impossible.\n");
    return 0;
}
