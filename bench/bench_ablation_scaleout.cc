/**
 * @file
 * Ablation (paper Section 8 outlook: "more aggressive scale-out
 * strategies"): global management at 16/32/64 cores. The exhaustive
 * 3^N MaxBIPS search is infeasible there; the branch-and-bound
 * search keeps decisions far below the explore interval while
 * preserving exact results. Workloads are the Table 2 8-way set
 * replicated.
 *
 * The per-combo references and the chip-wide baseline runs fan out
 * through the pool; the BnB runs stay serial because their wall
 * clock *is* the measurement (per-decision latency must not share
 * the machine with sibling runs).
 */

#include <chrono>
#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();

    bench::banner("Ablation — scale-out to 16/32/64 cores",
                  "MaxBIPS-BnB vs chip-wide DVFS at an 80% budget; "
                  "decision latency must stay below the 500 us "
                  "explore interval.");

    auto base = combination("8way1");
    const std::vector<int> reps{1, 2, 4, 8};
    std::vector<std::vector<std::string>> combos;
    for (int r : reps) {
        std::vector<std::string> combo;
        for (int i = 0; i < r; i++)
            combo.insert(combo.end(), base.begin(), base.end());
        combos.push_back(std::move(combo));
    }

    // Warm references and run the untimed chip-wide baselines in
    // parallel before the timed serial BnB passes.
    std::vector<PolicyEval> cw(combos.size());
    std::size_t threads = defaultConcurrency();
    bench::WallTimer warm_t;
    parallelFor(threads, combos.size(), [&](std::size_t i) {
        runner.referencePowerW(combos[i]);
        cw[i] = runner.evaluate(combos[i], "ChipWideDVFS", 0.8);
    });
    double warm_ms = warm_t.ms();

    Table t({"Cores", "MaxBIPS-BnB degr.", "ChipWide degr.",
             "gap", "decision us (BnB)"});
    for (std::size_t i = 0; i < combos.size(); i++) {
        auto t0 = std::chrono::steady_clock::now();
        auto mb = runner.evaluate(combos[i], "MaxBIPS-BnB", 0.8);
        auto wall = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        double per_decision = mb.managerStats.decisions
            ? wall / static_cast<double>(mb.managerStats.decisions)
            : 0.0;
        t.addRow(
            {std::to_string(combos[i].size()),
             Table::pct(mb.metrics.perfDegradation),
             Table::pct(cw[i].metrics.perfDegradation),
             Table::pct(cw[i].metrics.perfDegradation -
                        mb.metrics.perfDegradation),
             Table::num(per_decision, 1) + " (sim+decide)"});
    }
    t.print();
    bench::appendSweepJson("ablation_scaleout_warm", combos.size(),
                           threads, 0.0, warm_ms);

    std::printf("\nExpected shape: the per-core policy's advantage "
                "over chip-wide grows with core count (paper "
                "Figure 11 trend), and BnB decisions remain "
                "tractable at 64 cores where exhaustive search "
                "(3^64 states) is impossible.\n");
    return 0;
}
