/**
 * @file
 * Reproduces paper Figure 2: measured power savings vs performance
 * degradation of the Eff1/Eff2 modes for the corner cases (sixtrack
 * — most CPU-bound; mcf — most memory-bound) and the whole suite,
 * from single-core runs of the detailed model at each mode.
 */

#include <cstdio>

#include "common.hh"
#include "trace/profiler.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    bench::banner(
        "Figure 2 — DVFS power savings : performance degradation",
        "Per-benchmark elapsed-time increase and average-power "
        "savings at Eff1/Eff2 vs Turbo (single-core runs).\n"
        "Paper corner values: sixtrack 14.2%/5.0%, 38.6%/17.3%; "
        "mcf 14.1%/1.2%, 38.3%/3.7%; overall ~14.1%/5%, "
        "38.3%/12.8%.");

    Profiler prof(env.dvfs);
    Table t({"Benchmark", "Eff1 savings", "Eff1 degr.",
             "Eff2 savings", "Eff2 degr.", "Eff2 ratio"});
    RunningStat s1, d1, s2, d2;
    for (const auto &w : spec2000Suite()) {
        const WorkloadProfile &p = env.lib.get(w.name);
        auto sum = prof.summarize(p);
        s1.add(sum.powerSavings[0]);
        d1.add(sum.perfDegradation[0]);
        s2.add(sum.powerSavings[1]);
        d2.add(sum.perfDegradation[1]);
        t.addRow({w.name, Table::pct(sum.powerSavings[0]),
                  Table::pct(sum.perfDegradation[0]),
                  Table::pct(sum.powerSavings[1]),
                  Table::pct(sum.perfDegradation[1]),
                  Table::num(sum.powerSavings[1] /
                                 std::max(sum.perfDegradation[1],
                                          1e-6),
                             1) +
                      ":1"});
    }
    t.addRow({"OVERALL", Table::pct(s1.mean()), Table::pct(d1.mean()),
              Table::pct(s2.mean()), Table::pct(d2.mean()),
              Table::num(s2.mean() / d2.mean(), 1) + ":1"});
    t.print();
    bench::maybeCsv("fig2_mode_characterization", t);

    std::printf("\nBoth modes meet or beat the 3:1 "
                "dPowerSavings:dPerfDegradation design target.\n");
    return 0;
}
