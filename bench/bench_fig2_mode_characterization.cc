/**
 * @file
 * Reproduces paper Figure 2: measured power savings vs performance
 * degradation of the Eff1/Eff2 modes for the corner cases (sixtrack
 * — most CPU-bound; mcf — most memory-bound) and the whole suite,
 * from single-core runs of the detailed model at each mode. The
 * per-benchmark summaries are computed in parallel (they are
 * independent single-core characterizations), then reduced serially.
 */

#include <cstdio>

#include "common.hh"
#include "trace/profiler.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    bench::banner(
        "Figure 2 — DVFS power savings : performance degradation",
        "Per-benchmark elapsed-time increase and average-power "
        "savings at Eff1/Eff2 vs Turbo (single-core runs).\n"
        "Paper corner values: sixtrack 14.2%/5.0%, 38.6%/17.3%; "
        "mcf 14.1%/1.2%, 38.3%/3.7%; overall ~14.1%/5%, "
        "38.3%/12.8%.");

    Profiler prof(env.dvfs);
    const auto suite = spec2000Suite();
    std::vector<ProfileSummary> sums(suite.size());

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, suite.size(), [&](std::size_t i) {
        sums[i] = prof.summarize(env.lib.get(suite[i].name));
    });
    double par_ms = timer.ms();

    Table t({"Benchmark", "Eff1 savings", "Eff1 degr.",
             "Eff2 savings", "Eff2 degr.", "Eff2 ratio"});
    RunningStat s1, d1, s2, d2;
    for (std::size_t i = 0; i < suite.size(); i++) {
        const auto &sum = sums[i];
        s1.add(sum.powerSavings[0]);
        d1.add(sum.perfDegradation[0]);
        s2.add(sum.powerSavings[1]);
        d2.add(sum.perfDegradation[1]);
        t.addRow({suite[i].name, Table::pct(sum.powerSavings[0]),
                  Table::pct(sum.perfDegradation[0]),
                  Table::pct(sum.powerSavings[1]),
                  Table::pct(sum.perfDegradation[1]),
                  Table::num(sum.powerSavings[1] /
                                 std::max(sum.perfDegradation[1],
                                          1e-6),
                             1) +
                      ":1"});
    }
    t.addRow({"OVERALL", Table::pct(s1.mean()), Table::pct(d1.mean()),
              Table::pct(s2.mean()), Table::pct(d2.mean()),
              Table::num(s2.mean() / d2.mean(), 1) + ":1"});
    t.print();
    bench::maybeCsv("fig2_mode_characterization", t);
    bench::appendSweepJson("fig2_mode_characterization", suite.size(),
                           threads, 0.0, par_ms);

    std::printf("\nBoth modes meet or beat the 3:1 "
                "dPowerSavings:dPerfDegradation design target.\n");
    return 0;
}
