/**
 * @file
 * Cluster budget-arbiter benchmark: facility-level decision latency
 * and solution quality of the hierarchical (frontier-collapse)
 * allocation against a flat chip-blind MaxBIPS-DP solve, at
 * M ∈ {4, 16, 64} chips × N ∈ {16, 64, 256} cores and k = 5 modes.
 *
 * Per (M, N) the bench builds M per-chip predicted ModeMatrices from
 * the real workload profiles — chip i core c runs suite[(iN+c) % 12]
 * phase-shifted by frac((iN+c)·φ) — then measures the cluster
 * decision on its deployment critical path over GPM_CLUSTER_ITERS
 * iterations (p50/p99): every chip collapses + quantizes its own
 * frontier on-chip (concurrent across chips, so the slowest chip
 * bounds the phase; each is timed individually to stay independent
 * of this process's host-core count), then the facility arbiter
 * solves MaxBIPS-DP over the M reported 16-level frontiers. Inner
 * per-chip decisions run on-chip behind the award, so they are
 * excluded from the latency but included in the quality number:
 * hierarchical BIPS is the sum of per-chip MaxBIPS-DP solves at the
 * awarded budgets. The flat reference solves one concatenated
 * (M·N) × k matrix at the same facility budget, computed only at
 * M·N ≤ 1024 (where the paper-size flat policy engine is the
 * meaningful competitor).
 *
 * Results go to stdout and to BENCH_sweep.json as one NDJSON record
 * per (M, N):
 *
 *   { "bench": "cluster_scale", "n_chips": M, "n_cores": N,
 *     "n_modes": 5, "levels": 16, "iters": I, "p50_us": ...,
 *     "p99_us": ..., "budget_frac": 0.75, "hier_bips": ...,
 *     "flat_bips": ..., "gap_pct": ..., "scale": S }
 *
 * (flat_bips and gap_pct are 0 when the flat reference is skipped.)
 *
 * Knobs: GPM_CLUSTER_M (comma list, default "4,16,64"),
 * GPM_CLUSTER_N (default "16,64,256"), GPM_CLUSTER_ITERS (default
 * 50), plus GPM_SCALE / GPM_PROFILE_CACHE / GPM_PROFILE_CACHE_DIR.
 * Shares the 5-mode profile cache suffix (.k5) with the many-core
 * policy bench.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common.hh"
#include "core/mckp.hh"
#include "core/policies.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"

namespace
{

using namespace gpm;

/** Golden-ratio conjugate: maximally spread phase shifts. */
constexpr double phi = 0.6180339887498949;

constexpr unsigned kLevels = 16;
constexpr double kBudgetFrac = 0.75;

/** Flat reference only where the single-chip engine is plausible. */
constexpr std::size_t flatRefMaxCores = 1024;

std::vector<std::size_t>
listFromEnv(const char *env, const char *fallback)
{
    const char *s = std::getenv(env);
    if (!s || !*s)
        s = fallback;
    std::vector<std::size_t> out;
    std::string tok;
    for (const char *p = s;; p++) {
        if (*p == ',' || *p == '\0') {
            if (!tok.empty()) {
                long v = std::atol(tok.c_str());
                if (v >= 1)
                    out.push_back(static_cast<std::size_t>(v));
                tok.clear();
            }
            if (*p == '\0')
                break;
        } else {
            tok += *p;
        }
    }
    if (out.empty())
        fatal("%s '%s' has no valid counts", env, s);
    return out;
}

std::size_t
itersFromEnv()
{
    const char *s = std::getenv("GPM_CLUSTER_ITERS");
    if (!s || !*s)
        return 50;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::size_t>(v) : 50;
}

/** Percentile of an ascending-sorted sample [same unit as input]. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double idx = p * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double f = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - f) + sorted[hi] * f;
}

/**
 * Chip i's predicted N-core ModeMatrix: core c runs suite workload
 * (iN + c) % 12 phase-shifted by frac((iN + c)·φ) — every core of
 * every chip sees a different region of the streams, like the
 * many-core policy bench one level down.
 */
ModeMatrix
buildChipMatrix(ProfileLibrary &lib, const DvfsTable &dvfs,
                std::size_t chip, std::size_t n)
{
    const auto &combo = manyCoreCombo(n);
    ModeMatrix m(n, dvfs.numModes());
    for (std::size_t c = 0; c < n; c++) {
        ProfileCursor cur(lib.get(combo[c]));
        double f = static_cast<double>(chip * n + c) * phi;
        cur.seekFraction(f - std::floor(f));
        for (std::size_t mi = 0; mi < dvfs.numModes(); mi++) {
            auto mode = static_cast<PowerMode>(mi);
            auto d = cur.peek(500.0, mode);
            if (d.usedUs <= 0.0)
                continue; // empty profile: zero row entry
            m.powerW(c, mode) = d.energyJ / (d.usedUs * 1e-6);
            m.bips(c, mode) = d.instructions / (d.usedUs * 1000.0);
        }
    }
    return m;
}

} // namespace

int
main()
{
    bench::banner(
        "Cluster budget arbiter",
        "Facility-level decision latency (collapse + quantize + "
        "MaxBIPS-DP allocation) and hierarchical-vs-flat BIPS at "
        "4-64 chips x 16-256 cores, k = 5 modes.");

    DvfsTable dvfs = DvfsTable::linear(5);
    double scale = bench::scaleFromEnv();
    ProfileLibrary lib(dvfs, scale);
    if (std::string dir = bench::cacheDirFromEnv(); !dir.empty()) {
        lib.attachStore(dir);
        lib.buildSuite();
    } else {
        std::string path = bench::cachePathFromEnv() + ".k5";
        if (scale != 1.0) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), ".s%g", scale);
            path += buf;
        }
        lib.loadOrBuild(path);
    }

    const std::vector<std::size_t> chip_counts =
        listFromEnv("GPM_CLUSTER_M", "4,16,64");
    const std::vector<std::size_t> core_counts =
        listFromEnv("GPM_CLUSTER_N", "16,64,256");
    const std::size_t iters = itersFromEnv();

    Table t({"chips", "cores", "p50 [us]", "p99 [us]", "hier BIPS",
             "flat BIPS", "gap"});

    for (std::size_t mchips : chip_counts) {
        for (std::size_t n : core_counts) {
            std::vector<ModeMatrix> mats;
            mats.reserve(mchips);
            Watts turbo_total = 0.0;
            for (std::size_t i = 0; i < mchips; i++) {
                mats.push_back(buildChipMatrix(lib, dvfs, i, n));
                ModeColumns cols = ModeColumns::fromMatrix(mats[i]);
                turbo_total += cols.uniformPowerW(modes::Turbo);
            }
            const Watts facility_w = kBudgetFrac * turbo_total;

            // The timed unit is one outer-epoch decision on its
            // deployment critical path: each chip collapses and
            // quantizes its own frontier on-chip — physically
            // concurrent across chips — and the facility arbiter
            // then solves over the M reported frontiers. Decision
            // latency is therefore the slowest single-chip collapse
            // plus the serial facility allocation; each chip is
            // timed individually so the number does not depend on
            // how many host cores this benchmark process happens to
            // get. Inner per-chip mode solves are off this path.
            using clk = std::chrono::steady_clock;
            auto us = [](clk::time_point a, clk::time_point b) {
                return std::chrono::duration<double, std::micro>(
                           b - a)
                    .count();
            };
            // Each step is timed as the median of three repeats:
            // on a shared host a single preemption would otherwise
            // masquerade as the slowest chip, and the max over M
            // chips amplifies any such spike straight into p99.
            auto timed3 = [&](auto &&step) {
                double a = 0.0, b = 0.0, c = 0.0;
                for (double *slot : {&a, &b, &c}) {
                    auto t0 = clk::now();
                    step();
                    *slot = us(t0, clk::now());
                }
                return std::max(std::min(a, b),
                                std::min(std::max(a, b), c));
            };
            std::vector<ChipFrontier> fronts(mchips);
            ClusterAllocation alloc;
            auto decide = [&]() -> double {
                double slowest_chip = 0.0;
                for (std::size_t i = 0; i < mchips; i++)
                    slowest_chip = std::max(
                        slowest_chip, timed3([&] {
                            fronts[i] = quantizeFrontier(
                                collapseChipFrontier(mats[i]),
                                kLevels);
                        }));
                return slowest_chip + timed3([&] {
                    alloc = allocateFacilityBudget(
                        fronts, facility_w, "MaxBIPS-DP");
                });
            };
            decide(); // untimed warmup
            std::vector<double> lat_us(iters, 0.0);
            for (std::size_t i = 0; i < iters; i++)
                lat_us[i] = decide();
            std::sort(lat_us.begin(), lat_us.end());
            double p50 = percentile(lat_us, 0.50);
            double p99 = percentile(lat_us, 0.99);

            if (!alloc.feasible)
                fatal("facility budget infeasible at M=%zu N=%zu",
                      mchips, n);
            double award_sum = 0.0;
            for (Watts w : alloc.awardsW)
                award_sum += w;
            if (award_sum > facility_w * (1.0 + 1e-9))
                fatal("awards bust the facility budget at "
                      "M=%zu N=%zu (%.3f W > %.3f W)",
                      mchips, n, award_sum, facility_w);

            // Quality: inner MaxBIPS-DP at the awarded budgets.
            double hier_bips = 0.0;
            for (std::size_t i = 0; i < mchips; i++) {
                auto pick = MaxBipsDpPolicy::solve(
                    mats[i], alloc.awardsW[i],
                    MaxBipsDpPolicy::defaultGrid);
                hier_bips += mats[i].totalBips(pick);
            }

            // Flat reference: one chip-blind solve over the
            // concatenated matrix, where that engine is plausible.
            const bool flat = mchips * n <= flatRefMaxCores;
            double flat_bips = 0.0;
            if (flat) {
                ModeMatrix big(mchips * n, dvfs.numModes());
                for (std::size_t i = 0; i < mchips; i++)
                    for (std::size_t c = 0; c < n; c++)
                        for (std::size_t mi = 0;
                             mi < dvfs.numModes(); mi++) {
                            auto mode = static_cast<PowerMode>(mi);
                            big.powerW(i * n + c, mode) =
                                mats[i].powerW(c, mode);
                            big.bips(i * n + c, mode) =
                                mats[i].bips(c, mode);
                        }
                auto pick = MaxBipsDpPolicy::solve(
                    big, facility_w, MaxBipsDpPolicy::defaultGrid);
                flat_bips = big.totalBips(pick);
            }
            double gap = flat && flat_bips > 0.0
                ? (flat_bips - hier_bips) / flat_bips
                : 0.0;

            t.addRow({std::to_string(mchips), std::to_string(n),
                      Table::num(p50), Table::num(p99),
                      Table::num(hier_bips),
                      flat ? Table::num(flat_bips) : "-",
                      flat ? Table::pct(gap) : "-"});

            char rec[512];
            std::snprintf(
                rec, sizeof(rec),
                "{ \"bench\": \"cluster_scale\", "
                "\"n_chips\": %zu, \"n_cores\": %zu, "
                "\"n_modes\": %zu, \"levels\": %u, "
                "\"iters\": %zu, \"p50_us\": %.2f, "
                "\"p99_us\": %.2f, \"budget_frac\": %.2f, "
                "\"hier_bips\": %.4f, \"flat_bips\": %.4f, "
                "\"gap_pct\": %.3f, \"scale\": %g }",
                mchips, n, dvfs.numModes(), kLevels, iters, p50,
                p99, kBudgetFrac, hier_bips, flat_bips, gap * 100.0,
                scale);
            bench::appendBenchLine(rec);
        }
    }

    t.print();
    bench::maybeCsv("cluster_scale", t);
    return 0;
}
