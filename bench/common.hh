/**
 * @file
 * Shared environment for the per-figure benchmark harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper
 * (see EXPERIMENTS.md for the index). They share a disk-cached
 * ProfileLibrary so the expensive detailed-core profiling runs once;
 * the cache file defaults to ./gpm_profiles.bin and can be moved
 * with GPM_PROFILE_CACHE. GPM_SCALE (default 1.0) scales workload
 * lengths for quick runs.
 */

#ifndef GPM_BENCH_COMMON_HH
#define GPM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "metrics/experiment.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace gpm::bench
{

/** Workload length scale from GPM_SCALE (default 1.0). */
inline double
scaleFromEnv()
{
    const char *s = std::getenv("GPM_SCALE");
    if (!s)
        return 1.0;
    double v = std::atof(s);
    return v > 0.0 ? v : 1.0;
}

/** Profile-cache path from GPM_PROFILE_CACHE. */
inline std::string
cachePathFromEnv()
{
    const char *s = std::getenv("GPM_PROFILE_CACHE");
    return s ? s : "gpm_profiles.bin";
}

/** Owns the DVFS table and the shared, disk-cached profiles. */
class Env
{
  public:
    Env()
        : dvfs(DvfsTable::classic3()), scale(scaleFromEnv()),
          lib(dvfs, scale)
    {
        if (scale != 1.0) {
            // Scaled runs get their own cache file.
            char buf[64];
            std::snprintf(buf, sizeof(buf), ".s%g", scale);
            lib.loadOrBuild(cachePathFromEnv() + buf);
        } else {
            lib.loadOrBuild(cachePathFromEnv());
        }
    }

    /** An experiment runner over the shared library. */
    ExperimentRunner
    runner(SimConfig cfg = SimConfig{})
    {
        return ExperimentRunner(lib, dvfs, cfg);
    }

    DvfsTable dvfs;
    double scale;
    ProfileLibrary lib;
};

/** The budget sweep used throughout the evaluation figures. */
inline std::vector<double>
standardBudgets()
{
    return {0.625, 0.70, 0.775, 0.85, 0.925, 1.0};
}

/**
 * When GPM_CSV_DIR is set, write @p t as <dir>/<name>.csv so the
 * figure series can be re-plotted; silently does nothing otherwise.
 */
inline void
maybeCsv(const std::string &name, const Table &t)
{
    const char *dir = std::getenv("GPM_CSV_DIR");
    if (!dir)
        return;
    std::string path = std::string(dir) + "/" + name + ".csv";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", path.c_str());
        return;
    }
    std::fputs(t.csv().c_str(), f);
    std::fclose(f);
}

/** Print a figure/table banner. */
inline void
banner(const char *what, const char *detail)
{
    std::printf("\n=== %s ===\n%s\n\n", what, detail);
}

} // namespace gpm::bench

#endif // GPM_BENCH_COMMON_HH
