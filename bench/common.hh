/**
 * @file
 * Shared environment for the per-figure benchmark harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper
 * (see EXPERIMENTS.md for the index). They share a disk-cached
 * ProfileLibrary so the expensive detailed-core profiling runs once;
 * the cache file defaults to ./gpm_profiles.bin and can be moved
 * with GPM_PROFILE_CACHE. GPM_SCALE (default 1.0) scales workload
 * lengths for quick runs.
 */

#ifndef GPM_BENCH_COMMON_HH
#define GPM_BENCH_COMMON_HH

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "metrics/experiment.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace gpm::bench
{

/** Workload length scale from GPM_SCALE (default 1.0). */
inline double
scaleFromEnv()
{
    const char *s = std::getenv("GPM_SCALE");
    if (!s)
        return 1.0;
    double v = std::atof(s);
    return v > 0.0 ? v : 1.0;
}

/** Profile-cache path from GPM_PROFILE_CACHE. */
inline std::string
cachePathFromEnv()
{
    const char *s = std::getenv("GPM_PROFILE_CACHE");
    return s ? s : "gpm_profiles.bin";
}

/** Content-addressed profile-store directory from
 *  GPM_PROFILE_CACHE_DIR; empty = use the monolithic cache file. */
inline std::string
cacheDirFromEnv()
{
    const char *s = std::getenv("GPM_PROFILE_CACHE_DIR");
    return s ? s : "";
}

/** Owns the DVFS table and the shared, disk-cached profiles. */
class Env
{
  public:
    Env()
        : dvfs(DvfsTable::classic3()), scale(scaleFromEnv()),
          lib(dvfs, scale)
    {
        if (std::string dir = cacheDirFromEnv(); !dir.empty()) {
            // Content-addressed store: entries are keyed by the
            // profile inputs (scale included), so one directory
            // serves every scale.
            lib.attachStore(dir);
            lib.buildSuite();
        } else if (scale != 1.0) {
            // Scaled runs get their own cache file.
            char buf[64];
            std::snprintf(buf, sizeof(buf), ".s%g", scale);
            lib.loadOrBuild(cachePathFromEnv() + buf);
        } else {
            lib.loadOrBuild(cachePathFromEnv());
        }
    }

    /** An experiment runner over the shared library. */
    ExperimentRunner
    runner(SimConfig cfg = SimConfig{})
    {
        return ExperimentRunner(lib, dvfs, cfg);
    }

    DvfsTable dvfs;
    double scale;
    ProfileLibrary lib;
};

/**
 * The harnesses' sweep entry point: ExperimentRunner::trySweep with
 * its structured error surfaced as one actionable fatal() — the
 * offending point index and reason — instead of a fatal() firing
 * deep inside a simulation thread with no spec context.
 */
inline std::vector<PolicyEval>
sweepChecked(ExperimentRunner &runner, const SweepSpec &spec,
             std::size_t threads = 0)
{
    auto r = runner.trySweep(spec, threads);
    if (!r.ok())
        fatal("sweep spec rejected at point %zu: %s",
              r.error().pointIndex, r.error().message.c_str());
    return std::move(r.value());
}

/** The budget sweep used throughout the evaluation figures. */
inline std::vector<double>
standardBudgets()
{
    return {0.625, 0.70, 0.775, 0.85, 0.925, 1.0};
}

/**
 * When GPM_CSV_DIR is set, write @p t as <dir>/<name>.csv so the
 * figure series can be re-plotted; silently does nothing otherwise.
 */
inline void
maybeCsv(const std::string &name, const Table &t)
{
    const char *dir = std::getenv("GPM_CSV_DIR");
    if (!dir)
        return;
    std::string path = std::string(dir) + "/" + name + ".csv";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", path.c_str());
        return;
    }
    std::fputs(t.csv().c_str(), f);
    std::fclose(f);
}

/** Print a figure/table banner. */
inline void
banner(const char *what, const char *detail)
{
    std::printf("\n=== %s ===\n%s\n\n", what, detail);
}

/** Simple wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() : t0(std::chrono::steady_clock::now()) {}

    /** Milliseconds since construction. */
    double ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point t0;
};

/**
 * Migrate a pre-NDJSON `[ {...}, {...} ]` array log to one record
 * per line, atomically: the converted file is written next to the
 * original and rename()d over it, so a crash mid-migration leaves
 * the old file intact. No-op for missing/empty/already-NDJSON files.
 */
inline void
migrateLegacySweepJson(const std::string &path)
{
    std::string body;
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        char chunk[4096];
        std::size_t got;
        while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
            body.append(chunk, got);
        std::fclose(f);
    }
    std::size_t first = body.find_first_not_of(" \t\r\n");
    if (first == std::string::npos || body[first] != '[')
        return; // missing, empty, or already line-oriented

    // Pull out each top-level {...} object (legacy records never
    // nest braces inside strings) and emit it as one line.
    std::string lines;
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t i = first; i < body.size(); i++) {
        if (body[i] == '{' && depth++ == 0)
            start = i;
        else if (body[i] == '}' && --depth == 0) {
            std::string rec = body.substr(start, i - start + 1);
            // Collapse the old pretty-printing onto one line.
            std::string flat;
            for (char c : rec)
                if (c != '\n' && c != '\r')
                    flat += c;
            lines += flat + "\n";
        }
    }

    std::string tmp = path + ".migrate.tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "wb");
    if (!out) {
        warn("cannot write %s", tmp.c_str());
        return;
    }
    std::fputs(lines.c_str(), out);
    std::fflush(out);
    std::fclose(out);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot rename %s over %s", tmp.c_str(), path.c_str());
        std::remove(tmp.c_str());
    }
}

/**
 * Append one measurement to the machine-readable sweep-performance
 * log so the perf trajectory is tracked across PRs. The file
 * (BENCH_sweep.json, overridable with GPM_BENCH_JSON) is NDJSON —
 * one record per line:
 *
 *   { "bench": ..., "points": N, "threads": T, "host_cores": C,
 *     "scale": S, "serial_ms": ... | null, "parallel_ms": ...,
 *     "speedup": ... | null }
 *
 * serial_ms/speedup are null for benches that only measure the
 * parallel engine. Pass serial_ms <= 0 to mean "not measured".
 */
/**
 * Append one complete NDJSON record (a one-line JSON object, no
 * trailing newline) to the bench log (BENCH_sweep.json, overridable
 * with GPM_BENCH_JSON) as a single O_APPEND write, so concurrent
 * bench runs and interrupted processes can never interleave bytes
 * within a record or truncate earlier ones. Legacy array files are
 * converted in place first via migrateLegacySweepJson().
 */
inline void
appendBenchLine(std::string record)
{
    const char *p = std::getenv("GPM_BENCH_JSON");
    std::string path = p ? p : "BENCH_sweep.json";
    record += '\n';

    migrateLegacySweepJson(path);

    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                    0644);
    if (fd < 0) {
        warn("cannot write %s", path.c_str());
        return;
    }
    // One write per record (well under PIPE_BUF): appends from
    // concurrent processes land whole, in some order.
    const char *data = record.c_str();
    std::size_t left = record.size();
    while (left > 0) {
        ssize_t wrote = ::write(fd, data, left);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            warn("short write to %s", path.c_str());
            break;
        }
        data += wrote;
        left -= static_cast<std::size_t>(wrote);
    }
    ::close(fd);
}

inline void
appendSweepJson(const std::string &bench, std::size_t points,
                std::size_t threads, double serial_ms,
                double parallel_ms)
{
    std::string entry = "{ \"bench\": \"" + bench + "\"";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ", \"points\": %zu, \"threads\": %zu, "
                  "\"host_cores\": %u, \"scale\": %g",
                  points, threads,
                  std::thread::hardware_concurrency(),
                  scaleFromEnv());
    entry += buf;
    if (serial_ms > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      ", \"serial_ms\": %.1f, \"parallel_ms\": %.1f, "
                      "\"speedup\": %.2f }",
                      serial_ms, parallel_ms,
                      parallel_ms > 0.0 ? serial_ms / parallel_ms
                                        : 0.0);
    } else {
        std::snprintf(buf, sizeof(buf),
                      ", \"serial_ms\": null, \"parallel_ms\": %.1f, "
                      "\"speedup\": null }",
                      parallel_ms);
    }
    entry += buf;
    appendBenchLine(std::move(entry));
}

} // namespace gpm::bench

#endif // GPM_BENCH_COMMON_HH
