/**
 * @file
 * Reproduces paper Figure 4: policy curves (performance degradation
 * vs budget), budget curves (power consumed vs budget), and weighted
 * slowdowns for Priority, PullHiPushLo, MaxBIPS and chip-wide DVFS
 * on the (ammp, mcf, crafty, art) 4-way combination.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto combo = combination("4way1");
    auto budgets = bench::standardBudgets();
    const std::vector<std::string> policies{
        "PullHiPushLo", "Priority", "MaxBIPS", "ChipWideDVFS"};

    bench::banner("Figure 4 — policy / budget / weighted-slowdown "
                  "curves",
                  "(ammp, mcf, crafty, art), budgets as % of the "
                  "all-Turbo chip power.");

    std::vector<std::vector<PolicyEval>> evals;
    for (const auto &p : policies)
        evals.push_back(runner.curve(combo, p, budgets));

    auto header = [&]() {
        std::vector<std::string> h{"Budget"};
        for (const auto &p : policies)
            h.push_back(p);
        return h;
    };

    std::printf("(a) Policy curves: performance degradation\n");
    Table ta(header());
    for (std::size_t b = 0; b < budgets.size(); b++) {
        std::vector<std::string> row{Table::pct(budgets[b], 1)};
        for (std::size_t p = 0; p < policies.size(); p++)
            row.push_back(
                Table::pct(evals[p][b].metrics.perfDegradation));
        ta.addRow(row);
    }
    ta.print();
    bench::maybeCsv("fig4a_policy_curves", ta);

    std::printf("\n(b) Budget curves: consumed power / target "
                "budget\n");
    Table tb(header());
    for (std::size_t b = 0; b < budgets.size(); b++) {
        std::vector<std::string> row{Table::pct(budgets[b], 1)};
        for (std::size_t p = 0; p < policies.size(); p++)
            row.push_back(
                Table::pct(evals[p][b].metrics.powerOverBudget));
        tb.addRow(row);
    }
    tb.print();
    bench::maybeCsv("fig4b_budget_curves", tb);

    std::printf("\n(c) Weighted slowdowns (harmonic mean of thread "
                "speedups)\n");
    Table tc(header());
    for (std::size_t b = 0; b < budgets.size(); b++) {
        std::vector<std::string> row{Table::pct(budgets[b], 1)};
        for (std::size_t p = 0; p < policies.size(); p++)
            row.push_back(
                Table::pct(evals[p][b].metrics.weightedSlowdown));
        tc.addRow(row);
    }
    tc.print();
    bench::maybeCsv("fig4c_weighted_slowdowns", tc);

    std::printf("\nExpected shape (paper): MaxBIPS lowest "
                "degradation at every budget; chip-wide DVFS worst "
                "and leaves power slack (budget curve steps); all "
                "per-core policies sit near 100%% of budget.\n");
    return 0;
}
