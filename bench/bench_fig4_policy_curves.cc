/**
 * @file
 * Reproduces paper Figure 4: policy curves (performance degradation
 * vs budget), budget curves (power consumed vs budget), and weighted
 * slowdowns for Priority, PullHiPushLo, MaxBIPS and chip-wide DVFS
 * on the (ammp, mcf, crafty, art) 4-way combination.
 *
 * Also the primary wall-clock benchmark of the parallel sweep
 * engine: the (policy x budget) grid is evaluated once serially and
 * once through ExperimentRunner::sweep, the results are checked
 * identical, and both timings land in BENCH_sweep.json.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto combo = combination("4way1");
    auto budgets = bench::standardBudgets();
    const std::vector<std::string> policies{
        "PullHiPushLo", "Priority", "MaxBIPS", "ChipWideDVFS"};

    bench::banner("Figure 4 — policy / budget / weighted-slowdown "
                  "curves",
                  "(ammp, mcf, crafty, art), budgets as % of the "
                  "all-Turbo chip power.");

    SweepSpec spec;
    spec.addGrid({combo}, policies, budgets);

    // Warm the per-combo reference so both timed passes measure
    // pure policy evaluation.
    runner.referencePowerW(combo);

    bench::WallTimer serial_t;
    auto serial = bench::sweepChecked(runner, spec, 1);
    double serial_ms = serial_t.ms();

    std::size_t threads = defaultConcurrency();
    bench::WallTimer par_t;
    auto evals = bench::sweepChecked(runner, spec, threads);
    double par_ms = par_t.ms();

    // The sweep contract: thread count never changes results.
    for (std::size_t i = 0; i < evals.size(); i++)
        if (evals[i].metrics.chipBips !=
            serial[i].metrics.chipBips)
            fatal("sweep mismatch at point %zu", i);

    // Spec order is policy-major (addGrid: policy, then budget).
    auto at = [&](std::size_t p, std::size_t b) -> const PolicyEval & {
        return evals[p * budgets.size() + b];
    };

    auto header = [&]() {
        std::vector<std::string> h{"Budget"};
        for (const auto &p : policies)
            h.push_back(p);
        return h;
    };

    std::printf("(a) Policy curves: performance degradation\n");
    Table ta(header());
    for (std::size_t b = 0; b < budgets.size(); b++) {
        std::vector<std::string> row{Table::pct(budgets[b], 1)};
        for (std::size_t p = 0; p < policies.size(); p++)
            row.push_back(
                Table::pct(at(p, b).metrics.perfDegradation));
        ta.addRow(row);
    }
    ta.print();
    bench::maybeCsv("fig4a_policy_curves", ta);

    std::printf("\n(b) Budget curves: consumed power / target "
                "budget\n");
    Table tb(header());
    for (std::size_t b = 0; b < budgets.size(); b++) {
        std::vector<std::string> row{Table::pct(budgets[b], 1)};
        for (std::size_t p = 0; p < policies.size(); p++)
            row.push_back(
                Table::pct(at(p, b).metrics.powerOverBudget));
        tb.addRow(row);
    }
    tb.print();
    bench::maybeCsv("fig4b_budget_curves", tb);

    std::printf("\n(c) Weighted slowdowns (harmonic mean of thread "
                "speedups)\n");
    Table tc(header());
    for (std::size_t b = 0; b < budgets.size(); b++) {
        std::vector<std::string> row{Table::pct(budgets[b], 1)};
        for (std::size_t p = 0; p < policies.size(); p++)
            row.push_back(
                Table::pct(at(p, b).metrics.weightedSlowdown));
        tc.addRow(row);
    }
    tc.print();
    bench::maybeCsv("fig4c_weighted_slowdowns", tc);

    std::printf("\nsweep engine: %zu points, serial %.0f ms, "
                "%zu threads %.0f ms (%.2fx)\n",
                spec.size(), serial_ms, threads, par_ms,
                par_ms > 0.0 ? serial_ms / par_ms : 0.0);
    bench::appendSweepJson("fig4_policy_curves", spec.size(),
                           threads, serial_ms, par_ms);

    std::printf("\nExpected shape (paper): MaxBIPS lowest "
                "degradation at every budget; chip-wide DVFS worst "
                "and leaves power slack (budget curve steps); all "
                "per-core policies sit near 100%% of budget.\n");
    return 0;
}
