/**
 * @file
 * Reproduces paper Figure 7: MaxBIPS against its bounds — the
 * dynamic oracle (upper) and optimistic static mode selection
 * (lower) — plus chip-wide DVFS, as policy curves and weighted
 * slowdowns on (ammp, mcf, crafty, art). Key result: MaxBIPS within
 * ~1% of the oracle at every budget. All four method curves fan out
 * through the parallel sweep engine.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto combo = combination("4way1");
    auto budgets = bench::standardBudgets();
    const std::vector<std::string> methods{"ChipWideDVFS", "Static",
                                           "MaxBIPS", "Oracle"};

    bench::banner("Figure 7 — MaxBIPS vs oracle and optimistic "
                  "static bounds",
                  "(ammp, mcf, crafty, art).");

    SweepSpec spec;
    spec.addGrid({combo}, methods, budgets);

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    auto flat = bench::sweepChecked(runner, spec, threads);
    double par_ms = timer.ms();

    // Method-major spec order -> per-method curves.
    auto at = [&](std::size_t m, std::size_t b) -> const PolicyEval & {
        return flat[m * budgets.size() + b];
    };

    std::printf("(a) Policy curves: performance degradation\n");
    Table ta({"Budget", "ChipWideDVFS", "Static", "MaxBIPS",
              "Oracle", "MaxBIPS-Oracle"});
    double worst_gap = 0.0;
    for (std::size_t b = 0; b < budgets.size(); b++) {
        double gap = at(2, b).metrics.perfDegradation -
            at(3, b).metrics.perfDegradation;
        worst_gap = std::max(worst_gap, gap);
        ta.addRow({Table::pct(budgets[b], 1),
                   Table::pct(at(0, b).metrics.perfDegradation),
                   Table::pct(at(1, b).metrics.perfDegradation),
                   Table::pct(at(2, b).metrics.perfDegradation),
                   Table::pct(at(3, b).metrics.perfDegradation),
                   Table::pct(gap)});
    }
    ta.print();
    bench::maybeCsv("fig7a_policy_curves", ta);

    std::printf("\n(b) Weighted slowdowns\n");
    Table tb({"Budget", "ChipWideDVFS", "Static", "MaxBIPS",
              "Oracle"});
    for (std::size_t b = 0; b < budgets.size(); b++) {
        tb.addRow({Table::pct(budgets[b], 1),
                   Table::pct(at(0, b).metrics.weightedSlowdown),
                   Table::pct(at(1, b).metrics.weightedSlowdown),
                   Table::pct(at(2, b).metrics.weightedSlowdown),
                   Table::pct(at(3, b).metrics.weightedSlowdown)});
    }
    tb.print();
    bench::maybeCsv("fig7b_weighted_slowdowns", tb);
    bench::appendSweepJson("fig7_bounds", spec.size(), threads, 0.0,
                           par_ms);

    std::printf("\nMaxBIPS vs oracle: worst-case gap %.2f%% "
                "(paper: within ~1%%). Static and chip-wide sit "
                "above both dynamic per-core methods.\n",
                worst_gap * 100.0);
    return 0;
}
