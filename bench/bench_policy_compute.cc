/**
 * @file
 * Microbenchmarks (google-benchmark) of the global manager's
 * decision kernels, supporting the paper's Section 5.3/5.5 state-
 * space discussion: exhaustive MaxBIPS cost grows as modes^cores,
 * branch-and-bound contains it, and the heuristic policies are
 * near-free. Run time per decision must sit far below the 500 us
 * explore interval for the controller to be realizable.
 */

#include <benchmark/benchmark.h>

#include "core/policies.hh"
#include "helpers_bench.hh"

namespace
{

using namespace gpm;

void
BM_MaxBipsExhaustive(benchmark::State &state)
{
    auto m = benchdata::randomMatrix(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 42);
    std::vector<PowerMode> floor_assign(
        m.numCores(), static_cast<PowerMode>(m.numModes() - 1));
    Watts budget = m.totalPowerW(floor_assign) * 1.3;
    for (auto _ : state) {
        auto r = MaxBipsPolicy::solve(
            m, budget, MaxBipsPolicy::Search::Exhaustive);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MaxBipsExhaustive)
    ->ArgsProduct({{2, 4, 8}, {3, 4, 5}})
    ->Unit(benchmark::kMicrosecond);

void
BM_MaxBipsBranchAndBound(benchmark::State &state)
{
    auto m = benchdata::randomMatrix(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 42);
    std::vector<PowerMode> floor_assign(
        m.numCores(), static_cast<PowerMode>(m.numModes() - 1));
    Watts budget = m.totalPowerW(floor_assign) * 1.3;
    for (auto _ : state) {
        auto r = MaxBipsPolicy::solve(
            m, budget, MaxBipsPolicy::Search::BranchAndBound);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MaxBipsBranchAndBound)
    ->ArgsProduct({{4, 8, 16, 32, 64}, {3, 5}})
    ->Unit(benchmark::kMicrosecond);

void
BM_HeuristicPolicy(benchmark::State &state, const char *name)
{
    DvfsTable dvfs = DvfsTable::classic3();
    auto m = benchdata::randomMatrix(
        static_cast<std::size_t>(state.range(0)), 3, 7);
    std::vector<CoreSample> samples(m.numCores());
    for (std::size_t c = 0; c < samples.size(); c++) {
        samples[c].mode = modes::Turbo;
        samples[c].powerW = m.powerW(c, modes::Turbo);
        samples[c].bips = m.bips(c, modes::Turbo);
    }
    std::vector<PowerMode> floor_assign(m.numCores(), 2);
    PolicyInput in;
    in.predicted = &m;
    in.samples = &samples;
    in.budgetW = m.totalPowerW(floor_assign) * 1.3;
    in.dvfs = &dvfs;
    auto policy = makePolicy(name);
    for (auto _ : state) {
        auto r = policy->decide(in);
        benchmark::DoNotOptimize(r);
    }
}

void
BM_Priority(benchmark::State &state)
{
    BM_HeuristicPolicy(state, "Priority");
}
BENCHMARK(BM_Priority)->Arg(4)->Arg(16)->Arg(64);

void
BM_PullHiPushLo(benchmark::State &state)
{
    BM_HeuristicPolicy(state, "PullHiPushLo");
}
BENCHMARK(BM_PullHiPushLo)->Arg(4)->Arg(16)->Arg(64);

void
BM_ChipWide(benchmark::State &state)
{
    BM_HeuristicPolicy(state, "ChipWideDVFS");
}
BENCHMARK(BM_ChipWide)->Arg(4)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
