/**
 * @file
 * Extension: thermal consequences of the policy choice. The paper
 * motivates global management with power *and thermal* constraints
 * and offers PullHiPushLo as the power-balancing policy. This bench
 * runs every policy at the same budget with the RC thermal model
 * enabled and reports hotspot temperatures: balancing buys a cooler
 * hottest core, throughput optimization concentrates heat.
 */

#include <cstdio>

#include "common.hh"
#include "sim/cmp_sim.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto combo = combination("4way1");

    bench::banner("Extension — policy choice vs hotspot "
                  "temperature",
                  "(ammp, mcf, crafty, art) @ 85% budget, RC "
                  "thermal model (Rth 1.8 K/W, tau ~3 ms, "
                  "ambient 45 C).");

    SimConfig cfg;
    cfg.trackThermal = true;
    ExperimentRunner runner(env.lib, env.dvfs, cfg);

    Table t({"Policy", "Perf degradation", "Peak temp [C]",
             "Power/budget"});
    for (const char *policy :
         {"MaxBIPS", "Priority", "PullHiPushLo", "ChipWideDVFS"}) {
        // Timeline runs expose the thermal fields.
        auto res = runner.timeline(combo, policy,
                                   BudgetSchedule(0.85));
        auto ev = runner.evaluate(combo, policy, 0.85);
        t.addRow({policy,
                  Table::pct(ev.metrics.perfDegradation),
                  Table::num(res.peakTempC, 1),
                  Table::pct(ev.metrics.powerOverBudget)});
    }
    t.print();
    bench::maybeCsv("thermal_policies", t);

    std::printf("\nExpected shape: PullHiPushLo (power balancing) "
                "shows the lowest hotspot among the per-core "
                "policies at some throughput cost; MaxBIPS runs "
                "the hottest single core (it parks the budget on "
                "whoever converts watts to BIPS best) — the "
                "fairness/throughput trade-off of paper Section "
                "5.2 made thermally concrete.\n");
    return 0;
}
