/**
 * @file
 * Extension: thermal consequences of the policy choice. The paper
 * motivates global management with power *and thermal* constraints
 * and offers PullHiPushLo as the power-balancing policy. This bench
 * runs every policy at the same budget with the RC thermal model
 * enabled and reports hotspot temperatures: balancing buys a cooler
 * hottest core, throughput optimization concentrates heat. The four
 * policies run on separate pool slots against one shared runner.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "sim/cmp_sim.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto combo = combination("4way1");

    bench::banner("Extension — policy choice vs hotspot "
                  "temperature",
                  "(ammp, mcf, crafty, art) @ 85% budget, RC "
                  "thermal model (Rth 1.8 K/W, tau ~3 ms, "
                  "ambient 45 C).");

    SimConfig cfg;
    cfg.trackThermal = true;
    ExperimentRunner runner(env.lib, env.dvfs, cfg);

    const std::vector<const char *> policies{
        "MaxBIPS", "Priority", "PullHiPushLo", "ChipWideDVFS"};
    std::vector<double> peak(policies.size());
    std::vector<PolicyEval> evals(policies.size());

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, policies.size(), [&](std::size_t i) {
        // Timeline runs expose the thermal fields.
        auto res = runner.timeline(combo, policies[i],
                                   BudgetSchedule(0.85));
        peak[i] = res.peakTempC;
        evals[i] = runner.evaluate(combo, policies[i], 0.85);
    });
    double par_ms = timer.ms();

    Table t({"Policy", "Perf degradation", "Peak temp [C]",
             "Power/budget"});
    for (std::size_t i = 0; i < policies.size(); i++)
        t.addRow({policies[i],
                  Table::pct(evals[i].metrics.perfDegradation),
                  Table::num(peak[i], 1),
                  Table::pct(evals[i].metrics.powerOverBudget)});
    t.print();
    bench::maybeCsv("thermal_policies", t);
    bench::appendSweepJson("thermal_policies", policies.size() * 2,
                           threads, 0.0, par_ms);

    std::printf("\nExpected shape: PullHiPushLo (power balancing) "
                "shows the lowest hotspot among the per-core "
                "policies at some throughput cost; MaxBIPS runs "
                "the hottest single core (it parks the budget on "
                "whoever converts watts to BIPS best) — the "
                "fairness/throughput trade-off of paper Section "
                "5.2 made thermally concrete.\n");
    return 0;
}
