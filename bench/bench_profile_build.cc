/**
 * @file
 * Profile-pipeline build benchmark: the cold-start cost the paper's
 * "single-threaded Turandot runs" impose on every daemon start and
 * bench run, and what the parallel + content-addressed pipeline
 * recovers.
 *
 * Phases (each over the full 12-benchmark suite):
 *
 *   serial       buildSuite(1) into a cold store — the baseline the
 *                pre-parallel library paid on one thread
 *   cold@T       buildSuite(T) with a cold store, for T in {2, 8};
 *                results are checked bitwise against the serial
 *                build before timing is reported
 *   warm         buildSuite() over the store the cold run wrote:
 *                all profiles load from disk, zero detailed runs
 *   incremental  one workload's store entry removed, then
 *                buildSuite(): exactly one profile rebuilds
 *
 * Each phase appends one NDJSON record to BENCH_sweep.json (see
 * bench::appendBenchLine); the cold records carry the serial
 * baseline so speedup is recorded on the same machine. GPM_SCALE
 * scales workload lengths as usual (use ~0.1 for a quick run).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "common.hh"
#include "trace/profile_store.hh"
#include "trace/profiler.hh"

namespace
{

using namespace gpm;
using namespace gpm::bench;

bool
identicalProfiles(const WorkloadProfile &a, const WorkloadProfile &b)
{
    if (a.name != b.name || a.modes.size() != b.modes.size())
        return false;
    for (std::size_t m = 0; m < a.modes.size(); m++) {
        const ModeProfile &x = a.modes[m], &y = b.modes[m];
        if (x.chunkInsts != y.chunkInsts ||
            x.lastChunkInsts != y.lastChunkInsts ||
            x.chunks.size() != y.chunks.size())
            return false;
        if (std::memcmp(x.chunks.data(), y.chunks.data(),
                        x.chunks.size() * sizeof(ChunkRecord)) != 0)
            return false;
    }
    return true;
}

/** Suite profiles of a library, in suite order. */
std::vector<const WorkloadProfile *>
suiteProfiles(ProfileLibrary &lib)
{
    std::vector<const WorkloadProfile *> out;
    for (const auto &w : spec2000Suite())
        out.push_back(&lib.get(w.name));
    return out;
}

void
wipeStore(const std::string &dir)
{
    std::string cmd = "rm -rf " + dir;
    if (std::system(cmd.c_str()) != 0)
        warn("cannot clear %s", dir.c_str());
}

} // namespace

int
main()
{
    banner("profile pipeline build cost",
           "cold (serial vs parallel), warm (store hits), and "
           "incremental (one entry invalidated) suite builds");

    DvfsTable dvfs = DvfsTable::classic3();
    const double scale = scaleFromEnv();
    const std::size_t suite_n = spec2000Suite().size();
    const std::size_t tasks = suite_n * dvfs.numModes();
    char dirbuf[] = "gpm_profile_store_bench.XXXXXX";
    if (!::mkdtemp(dirbuf))
        fatal("mkdtemp failed");
    const std::string dir = dirbuf;

    // --- serial baseline (cold store) ---------------------------
    ProfileLibrary serial_lib(dvfs, scale);
    serial_lib.attachStore(dir + "/serial");
    WallTimer t_serial;
    serial_lib.buildSuite(1);
    const double serial_ms = t_serial.ms();
    std::printf("serial    : %8.1f ms (%zu workloads x %zu modes)\n",
                serial_ms, suite_n, dvfs.numModes());
    auto baseline = suiteProfiles(serial_lib);

    // --- cold parallel builds, checked bitwise ------------------
    for (std::size_t threads : {std::size_t(2), std::size_t(8)}) {
        ProfileLibrary lib(dvfs, scale);
        std::string sub = dir + "/t" + std::to_string(threads);
        lib.attachStore(sub);
        WallTimer t;
        lib.buildSuite(threads);
        double ms = t.ms();
        auto built = suiteProfiles(lib);
        for (std::size_t i = 0; i < built.size(); i++)
            if (!identicalProfiles(*built[i], *baseline[i]))
                fatal("parallel build diverged from serial for %s",
                      baseline[i]->name.c_str());
        std::printf("cold @%zu   : %8.1f ms  speedup %.2fx "
                    "(bitwise-identical to serial)\n",
                    threads, ms, serial_ms / ms);
        appendSweepJson("profile_build_cold", tasks, threads,
                        serial_ms, ms);
    }

    // --- warm start over the populated store --------------------
    {
        ProfileLibrary lib(dvfs, scale);
        lib.attachStore(dir + "/t8");
        WallTimer t;
        lib.buildSuite();
        double ms = t.ms();
        ProfileLibraryStats st = lib.stats();
        if (st.builds != 0 || st.diskHits != suite_n)
            fatal("warm start rebuilt profiles (builds %llu, disk "
                  "hits %llu)",
                  static_cast<unsigned long long>(st.builds),
                  static_cast<unsigned long long>(st.diskHits));
        std::printf("warm      : %8.1f ms  (all %zu from disk, "
                    "0 builds)\n",
                    ms, suite_n);
        appendSweepJson("profile_build_warm", tasks, 1, 0.0, ms);
    }

    // --- incremental: invalidate one workload's entry -----------
    {
        const WorkloadSpec &victim = spec2000Suite().front();
        ProfileLibrary lib(dvfs, scale);
        lib.attachStore(dir + "/t8");
        {
            ProfileStore probe(dir + "/t8");
            std::string path = probe.pathFor(
                victim.name, lib.workloadFingerprint(victim));
            if (::unlink(path.c_str()) != 0)
                fatal("cannot invalidate %s", path.c_str());
        }
        WallTimer t;
        lib.buildSuite();
        double ms = t.ms();
        ProfileLibraryStats st = lib.stats();
        if (st.builds != 1 || st.diskHits != suite_n - 1)
            fatal("incremental rebuild touched more than the "
                  "invalidated entry (builds %llu, disk hits %llu)",
                  static_cast<unsigned long long>(st.builds),
                  static_cast<unsigned long long>(st.diskHits));
        std::printf("increment : %8.1f ms  (rebuilt only %s)\n", ms,
                    victim.name.c_str());
        appendSweepJson("profile_build_incremental",
                        dvfs.numModes(), 1, 0.0, ms);
    }

    wipeStore(dir);
    return 0;
}
