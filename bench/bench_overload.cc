/**
 * @file
 * Overload-resilience benchmark: goodput and tail latency of the
 * scenario service across offered-load sweeps, with the adaptive
 * layer (admission control + degradation ladder) on vs off, plus a
 * self-asserting chaos phase that arms `disk-read-stall` at 2x the
 * measured capacity and checks the hardened daemon:
 *
 *   - sustains >= 90% of its unloaded goodput,
 *   - returns zero internal_error responses,
 *   - opens the disk-cache read breaker under the stalls and closes
 *     it again once the "disk" heals.
 *
 * Phases:
 *   capacity   sequential cold requests -> mean service time; this
 *              also primes the admission EWMAs, as production
 *              serving would
 *   sweep      offered load {1, 2, 4}x capacity, hardened and
 *              baseline (--overload-off --degrade-ladder 0
 *              equivalent), paced arrivals over 4 client ids
 *   chaos      hardened daemon, 2x load, disk-read-stall armed
 *
 * NDJSON records go to BENCH_sweep.json (bench "overload"). The
 * process exits non-zero when a chaos assertion fails, so tier-2
 * scripts can gate on it. Knobs: GPM_BENCH_REQUESTS per phase
 * (default 24), plus the usual GPM_SCALE / GPM_PROFILE_CACHE.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <dirent.h>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common.hh"
#include "service/service.hh"
#include "util/fault.hh"

namespace
{

using namespace gpm;

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/** Every request gets a budget no prior request of this process
 *  used (odd multiplier mod 2^16 is a bijection), so each one is a
 *  guaranteed cache miss while staying inside the valid (0, 1]
 *  budget range. */
ScenarioSpec
nextScenario()
{
    static std::atomic<std::size_t> counter{0};
    std::size_t k = (counter++ * 7919) % 65536;
    ScenarioSpec s;
    s.combo = {"mcf", "crafty"};
    s.policy = "MaxBIPS";
    s.budgets = {0.60 + 0.38 * static_cast<double>(k) / 65536.0};
    return s;
}

/** Everything one paced-load run produces. */
struct RunResult
{
    double wallMs = 0.0;
    std::size_t ok = 0;
    std::size_t degraded = 0;
    std::size_t shed = 0;      ///< rejected_overload
    std::size_t deadline = 0;  ///< deadline_exceeded
    std::size_t busy = 0;
    std::size_t internal = 0;
    std::vector<double> latenciesMs; ///< ok responses only, sorted

    double
    goodputPerSec() const
    {
        return wallMs > 0.0
            ? static_cast<double>(ok) / (wallMs / 1000.0)
            : 0.0;
    }
};

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/**
 * Submit @p n unique scenarios at @p perSec paced arrivals (0 =
 * back-to-back), each with @p deadlineMs, round-robin over 4
 * client ids, and wait for every callback.
 */
RunResult
pacedRun(ScenarioService &svc, std::size_t n, double perSec,
         double deadlineMs)
{
    RunResult res;
    std::mutex mtx;
    std::condition_variable cv;
    std::size_t doneCount = 0;

    bench::WallTimer wall;
    for (std::size_t i = 0; i < n; i++) {
        ScenarioSpec spec = nextScenario();
        spec.deadlineMs = deadlineMs;
        auto t0 = std::chrono::steady_clock::now();
        svc.submitAsync(
            spec,
            [&, t0](ScenarioService::Response &&r) {
                double ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                std::lock_guard<std::mutex> lock(mtx);
                if (r.ok) {
                    res.ok++;
                    res.latenciesMs.push_back(ms);
                    if (!r.degradedTo.empty())
                        res.degraded++;
                } else if (r.errorCode == "rejected_overload") {
                    res.shed++;
                } else if (r.errorCode == "deadline_exceeded") {
                    res.deadline++;
                } else if (r.errorCode == "busy") {
                    res.busy++;
                } else {
                    res.internal++;
                }
                doneCount++;
                cv.notify_all();
            },
            1 + i % 4);
        if (perSec > 0.0 && i + 1 < n)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(1.0 / perSec));
    }
    {
        std::unique_lock<std::mutex> lock(mtx);
        cv.wait(lock, [&] { return doneCount == n; });
    }
    res.wallMs = wall.ms();
    std::sort(res.latenciesMs.begin(), res.latenciesMs.end());
    return res;
}

void
report(const char *phase, const char *mode, double mult,
       const RunResult &r)
{
    std::printf("%-8s %-9s %4.1fx  goodput %6.1f/s  p99 %8.1f ms  "
                "ok %3zu  degraded %3zu  shed %3zu  deadline %3zu  "
                "busy %3zu  internal %3zu\n",
                phase, mode, mult, r.goodputPerSec(),
                percentile(r.latenciesMs, 0.99), r.ok, r.degraded,
                r.shed, r.deadline, r.busy, r.internal);
    char buf[360];
    std::snprintf(
        buf, sizeof(buf),
        "{ \"bench\": \"overload\", \"phase\": \"%s\", "
        "\"mode\": \"%s\", \"load_mult\": %.1f, "
        "\"goodput_per_sec\": %.1f, \"p99_ms\": %.1f, "
        "\"ok\": %zu, \"degraded\": %zu, \"shed\": %zu, "
        "\"deadline\": %zu, \"busy\": %zu, \"internal\": %zu }",
        phase, mode, mult, r.goodputPerSec(),
        percentile(r.latenciesMs, 0.99), r.ok, r.degraded, r.shed,
        r.deadline, r.busy, r.internal);
    bench::appendBenchLine(buf);
}

std::string
makeCacheDir()
{
    char tmpl[] = "/tmp/gpm_bench_overload_XXXXXX";
    if (!::mkdtemp(tmpl))
        fatal("mkdtemp failed");
    return tmpl;
}

void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

ServiceOptions
hardenedOpts()
{
    ServiceOptions opts;
    opts.workers = 1; // capacity == 1/meanServiceTime, by design
    opts.queueCapacity = 48;
    opts.sweepConcurrency = 1;
    opts.cacheCapacity = 256;
    return opts;
}

} // namespace

int
main()
{
    std::size_t n = envSize("GPM_BENCH_REQUESTS", 24);

    bench::banner("Overload resilience",
                  "goodput + p99 across offered-load sweeps, "
                  "adaptive layer on vs off, then chaos at 2x "
                  "with disk-read-stall armed");

    bench::Env env;

    // --- Phase 1: capacity. A saturating burst through the single
    // worker measures the true mean service time (wall over
    // completions, not per-request latency, which would fold queue
    // wait back in) and primes the EWMAs the admission controller
    // predicts with.
    ScenarioService warm(env.lib, env.dvfs, hardenedOpts());
    RunResult cap =
        pacedRun(warm, std::max<std::size_t>(n, 16), 0.0, 0.0);
    if (cap.ok == 0)
        fatal("capacity phase produced no completions");
    double meanMs = cap.wallMs / static_cast<double>(cap.ok);
    double capacityPerSec = 1000.0 / meanMs;
    std::printf("capacity: mean service %.2f ms -> %.1f req/s\n\n",
                meanMs, capacityPerSec);

    // --- Phase 2: offered-load sweep, hardened vs baseline. The
    // deadline is 8 mean service times: generous when unloaded,
    // predictably doomed deep in an overloaded queue.
    double deadlineMs = 8.0 * meanMs;
    for (double mult : {1.0, 2.0, 4.0}) {
        RunResult hard =
            pacedRun(warm, n, capacityPerSec * mult, deadlineMs);
        report("sweep", "hardened", mult, hard);
    }
    std::printf("\n");
    {
        ServiceOptions base = hardenedOpts();
        base.admission.enabled = false;
        base.degradeLadder = false;
        ScenarioService baseline(env.lib, env.dvfs, base);
        // Same warmup so EWMAs/caches start comparable (they are
        // unused with the layer off, but the profile library and
        // runners are shared state worth equalizing).
        pacedRun(baseline, std::max<std::size_t>(n / 3, 6), 0.0,
                 0.0);
        for (double mult : {1.0, 2.0, 4.0}) {
            RunResult off = pacedRun(baseline, n,
                                     capacityPerSec * mult,
                                     deadlineMs);
            report("sweep", "baseline", mult, off);
        }
    }
    std::printf("\n");

    // --- Phase 3: chaos. Disk reads stall-and-fail under 2x load;
    // the read breaker must collapse the service to memory-only
    // serving, goodput must hold against an un-faulted run at the
    // SAME offered load, and nothing may surface as
    // internal_error. The request count scales with the measured
    // service time so the fixed breaker-opening overhead (a
    // handful of 1 ms stalls) amortizes at any GPM_SCALE.
    std::string cacheDir = makeCacheDir();
    int rc = 0;
    {
        std::size_t chaosN = std::clamp<std::size_t>(
            static_cast<std::size_t>(1500.0 / meanMs),
            std::max<std::size_t>(2 * n, 48), 6000);
        ServiceOptions chaosOpts = hardenedOpts();
        chaosOpts.cacheDir = cacheDir;
        chaosOpts.resultBreaker.window = 8;
        chaosOpts.resultBreaker.minSamples = 4;
        // Long cooldown: the breaker stays open for the bulk of
        // the faulted run instead of burning a stall on a doomed
        // probe every few hundred milliseconds.
        chaosOpts.resultBreaker.cooldownMs = 1000.0;
        ScenarioService svc(env.lib, env.dvfs, chaosOpts);

        // Un-faulted reference at the same 2x offered load (no
        // deadlines: pure sustained throughput, both runs shed and
        // queue identically).
        RunResult ref =
            pacedRun(svc, chaosN, capacityPerSec * 2.0, 0.0);
        report("chaos", "no-fault", 2.0, ref);

        if (fault::arm("disk-read-stall:1:1,seed:42"))
            fatal("fault spec rejected");
        RunResult chaos =
            pacedRun(svc, chaosN, capacityPerSec * 2.0, 0.0);
        report("chaos", "hardened", 2.0, chaos);
        fault::disarm();

        ServiceStats st = svc.stats();
        double ratio = ref.goodputPerSec() > 0.0
            ? chaos.goodputPerSec() / ref.goodputPerSec()
            : 0.0;
        std::printf("chaos: goodput ratio %.2f, degraded %zu, "
                    "breaker opens %llu, state %s\n",
                    ratio, chaos.degraded,
                    static_cast<unsigned long long>(
                        st.diskBreakerOpens),
                    st.diskBreakerState);
        if (chaos.internal != 0) {
            std::printf("FAIL: %zu internal_error responses under "
                        "chaos\n",
                        chaos.internal);
            rc = 1;
        }
        if (ratio < 0.9) {
            std::printf("FAIL: chaos goodput ratio %.2f < 0.90\n",
                        ratio);
            rc = 1;
        }
        if (st.diskBreakerOpens == 0) {
            std::printf("FAIL: disk breaker never opened under "
                        "read stalls\n");
            rc = 1;
        }

        // The disk heals: after the cooldown the next misses probe
        // the breaker closed again.
        auto until = std::chrono::steady_clock::now() +
            std::chrono::seconds(10);
        while (std::string(svc.stats().diskBreakerState) !=
                   "closed" &&
               std::chrono::steady_clock::now() < until) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(60));
            pacedRun(svc, 1, 0.0, 0.0); // a fresh miss probes
        }
        if (std::string(svc.stats().diskBreakerState) !=
            "closed") {
            std::printf("FAIL: disk breaker did not re-close "
                        "after the fault cleared\n");
            rc = 1;
        } else {
            std::printf("chaos: breaker re-closed after "
                        "recovery\n");
        }
    }
    removeTree(cacheDir);

    std::printf("\n%s\n",
                rc == 0 ? "BENCH_OVERLOAD OK"
                        : "BENCH_OVERLOAD FAILED");
    return rc;
}
