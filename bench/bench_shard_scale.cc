/**
 * @file
 * Sharded-fleet scaling benchmark: gpm-router in front of 1, 2 and
 * 4 in-process gpmd backends sharing one --cache-dir, against a
 * direct single-gpmd baseline on identical warm work.
 *
 * Phases (all driving the same 64-scenario warm set, pipelined
 * over GPM_BENCH_SHARD_CONNS connections):
 *
 *   direct-1   clients -> gpmd, no router (baseline)
 *   router-1   clients -> gpm-router -> 1 backend (proxy overhead)
 *   router-2   clients -> gpm-router -> 2 backends
 *   router-4   clients -> gpm-router -> 4 backends
 *   router-2-kill  2 backends; one is stopped mid-load while
 *              retrying clients keep submitting — every request
 *              must complete (retries allowed) and no client may
 *              ever see internal_error
 *
 * Every topology is warmed through its own front door first (one
 * untimed pass computes / disk-loads each scenario into the shard
 * owner's memory tier), so the measured pass is the serving path.
 * The shared cache directory is the fleet-wide reuse story: after
 * the kill, re-routed scenarios answer from the surviving
 * backend's disk tier, byte-identical.
 *
 * Enforcement: any request error in the scaling phases fails the
 * run; the router-2 >= 1.6x direct-1 scaling gate additionally
 * requires std::thread::hardware_concurrency() >= 4 (backends are
 * in-process threads — on a 1-2 core host they time-slice one CPU
 * and the ratio is meaningless). GPM_BENCH_NO_ENFORCE=1 records
 * numbers without either gate.
 *
 * Each phase goes to stdout and to BENCH_sweep.json as one NDJSON
 * record:
 *
 *   { "bench": "shard_scale", "phase": ..., "backends": N,
 *     "conns": C, "scenarios": M, "wall_ms": ...,
 *     "scenarios_per_sec": ..., "p50_ms": ..., "p99_ms": ...,
 *     "failures": F }
 *
 * (the kill phase adds "retries" and "rerouted").
 *
 * Knobs: GPM_BENCH_SHARD_CONNS (default 8),
 * GPM_BENCH_SHARD_PER_CONN (default 128), plus the usual
 * GPM_SCALE / GPM_PROFILE_CACHE.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common.hh"
#include "router/router.hh"
#include "service/json.hh"
#include "service/server.hh"
#include "service/service.hh"

namespace
{

using namespace gpm;

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/** Distinct scenarios in the warm set: enough budgets that a
 *  4-backend ring gets a meaningful shard split. */
constexpr std::size_t kWarmSet = 64;

/** One of the fixed warm-set scenarios (64 distinct budgets). */
std::string
warmScenarioJson(std::size_t v)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"combo\":[\"mcf\",\"crafty\"],"
                  "\"policy\":\"MaxBIPS\",\"budget\":%.6f}",
                  0.55 + 0.005 * static_cast<double>(v % kWarmSet));
    return buf;
}

std::string
submitLine(std::size_t conn, std::size_t k)
{
    return "{\"id\":\"s" + std::to_string(conn) + "-" +
        std::to_string(k) + "\",\"verb\":\"submit\","
        "\"scenario\":" + warmScenarioJson(conn + k) + "}\n";
}

struct PhaseResult
{
    double wallMs = 0.0;
    std::vector<double> latenciesMs; // one per scenario
    std::size_t failures = 0;
};

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/** Print + record one phase; returns its scenarios/sec. */
double
report(const char *phase, std::size_t backends, std::size_t conns,
       std::size_t totalScenarios, const PhaseResult &res,
       const std::string &extraJson = "")
{
    double perSec = res.wallMs > 0.0
        ? static_cast<double>(totalScenarios) /
            (res.wallMs / 1000.0)
        : 0.0;
    double p50 = percentile(res.latenciesMs, 0.50);
    double p99 = percentile(res.latenciesMs, 0.99);
    std::printf("%-14s %7.0f scen/s  p50 %7.1f ms  p99 %7.1f ms  "
                "wall %8.1f ms%s\n",
                phase, perSec, p50, p99, res.wallMs,
                res.failures ? "  [FAILURES]" : "");
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "{ \"bench\": \"shard_scale\", \"phase\": \"%s\", "
        "\"backends\": %zu, \"conns\": %zu, \"scenarios\": %zu, "
        "\"wall_ms\": %.1f, \"scenarios_per_sec\": %.1f, "
        "\"p50_ms\": %.1f, \"p99_ms\": %.1f, \"failures\": %zu%s }",
        phase, backends, conns, totalScenarios, res.wallMs, perSec,
        p50, p99, res.failures, extraJson.c_str());
    bench::appendBenchLine(buf);
    return perSec;
}

/** Fresh scratch directory for the fleet's shared disk tier. */
std::string
makeCacheDir()
{
    char tmpl[] = "/tmp/gpm_bench_shard_XXXXXX";
    if (!::mkdtemp(tmpl))
        fatal("mkdtemp failed");
    return tmpl;
}

void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

/**
 * N in-process gpmd backends over one shared cache directory —
 * each is a full ScenarioService + GpmServer (reactor) pair, the
 * same stack `gpmd --cache-dir` runs, minus the process boundary.
 */
struct Fleet
{
    Fleet(bench::Env &env_, const std::string &cacheDir_)
        : env(env_), cacheDir(cacheDir_)
    {
    }

    ~Fleet() { stopAll(); }

    void
    start(std::size_t n)
    {
        for (std::size_t i = 0; i < n; i++) {
            ServiceOptions opts;
            opts.workers = 2;
            opts.queueCapacity = kWarmSet + 16;
            opts.sweepConcurrency = 1;
            opts.cacheDir = cacheDir;
            svcs.push_back(std::make_unique<ScenarioService>(
                env.lib, env.dvfs, opts));
            auto listener = TcpListener::listenOn("127.0.0.1", 0);
            if (!listener.ok())
                fatal("fleet listen: %s",
                      listener.error().c_str());
            servers.push_back(std::make_unique<GpmServer>(
                *svcs.back(), std::move(listener.value())));
            threads.emplace_back(
                [srv = servers.back().get()] { srv->run(); });
            endpoints.push_back(
                {"127.0.0.1", servers.back()->port()});
        }
    }

    /** Take backend @p i down (clean close: the router sees its
     *  pooled connections EOF and fails over). */
    void
    stop(std::size_t i)
    {
        if (i >= servers.size() || !servers[i])
            return;
        servers[i]->requestStop();
        if (threads[i].joinable())
            threads[i].join();
        servers[i]->stopAndDrain();
        servers[i].reset();
        svcs[i].reset();
    }

    void
    stopAll()
    {
        for (std::size_t i = 0; i < servers.size(); i++)
            stop(i);
        servers.clear();
        svcs.clear();
        threads.clear();
        endpoints.clear();
    }

    bench::Env &env;
    std::string cacheDir;
    std::vector<std::unique_ptr<ScenarioService>> svcs;
    std::vector<std::unique_ptr<GpmServer>> servers;
    std::vector<std::thread> threads;
    std::vector<RouterEndpoint> endpoints;
};

/** gpm-router over @p eps on an ephemeral port, serving on its own
 *  thread until destroyed. */
struct RouterUnderTest
{
    explicit RouterUnderTest(std::vector<RouterEndpoint> eps)
    {
        auto listener = TcpListener::listenOn("127.0.0.1", 0);
        if (!listener.ok())
            fatal("router listen: %s", listener.error().c_str());
        RouterOptions opts;
        opts.breaker.window = 8;
        opts.breaker.minSamples = 4;
        opts.breaker.cooldownMs = 50.0;
        opts.probeIntervalMs = 10;
        opts.backendConnectTimeoutMs = 500;
        router = std::make_unique<GpmRouter>(
            std::move(eps), std::move(listener.value()), opts);
        thread = std::thread([this] { router->run(); });
    }

    ~RouterUnderTest()
    {
        router->requestStop();
        if (thread.joinable())
            thread.join();
        router->stopAndDrain();
    }

    std::uint16_t port() const { return router->port(); }

    std::unique_ptr<GpmRouter> router;
    std::thread thread;
};

/** One untimed pass over the warm set so the measured pass hits
 *  each shard owner's memory tier (or at worst the shared disk).
 *  Sequential round trips, not a pipeline: a cold pass queues
 *  every scenario, and 64 outstanding submits on one connection
 *  would trip gpmd's per-client admission cap by design. */
void
warmThrough(std::uint16_t port)
{
    auto conn = TcpStream::connectTo("127.0.0.1", port);
    if (!conn.ok())
        fatal("warm connect: %s", conn.error().c_str());
    TcpStream stream = std::move(conn.value());
    std::string line;
    for (std::size_t v = 0; v < kWarmSet; v++) {
        if (!stream.writeAll(submitLine(0, v)))
            fatal("warm send failed");
        if (stream.readLine(line) != TcpStream::ReadStatus::Line)
            fatal("warm pass lost its connection after %zu of %zu "
                  "responses",
                  v, kWarmSet);
        if (line.find("\"ok\":true") == std::string::npos)
            fatal("warm pass scenario %zu failed: %s", v,
                  line.c_str());
    }
}

/** One measured client: pipeline perConn warm submits, then
 *  collect the responses. */
void
runClient(std::uint16_t port, std::size_t conn,
          std::size_t perConn, std::vector<double> &latencies,
          std::atomic<std::size_t> &failures)
{
    auto c = TcpStream::connectTo("127.0.0.1", port);
    if (!c.ok())
        fatal("client %zu: %s", conn, c.error().c_str());
    TcpStream stream = std::move(c.value());
    std::string pipeline;
    for (std::size_t k = 0; k < perConn; k++)
        pipeline += submitLine(conn, k);

    bench::WallTimer timer;
    if (!stream.writeAll(pipeline))
        fatal("client %zu: send failed", conn);
    std::string line;
    for (std::size_t k = 0; k < perConn; k++) {
        if (stream.readLine(line) !=
            TcpStream::ReadStatus::Line) {
            failures += perConn - k;
            return;
        }
        latencies.push_back(timer.ms());
        if (line.find("\"ok\":true") == std::string::npos)
            failures++;
    }
}

PhaseResult
drivePhase(std::uint16_t port, std::size_t conns,
           std::size_t perConn)
{
    PhaseResult res;
    std::vector<std::vector<double>> lats(conns);
    std::atomic<std::size_t> failures{0};
    bench::WallTimer wall;
    {
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < conns; c++)
            threads.emplace_back(runClient, port, c, perConn,
                                 std::ref(lats[c]),
                                 std::ref(failures));
        for (auto &t : threads)
            t.join();
    }
    res.wallMs = wall.ms();
    res.failures = failures.load();
    for (auto &l : lats)
        res.latenciesMs.insert(res.latenciesMs.end(), l.begin(),
                               l.end());
    std::sort(res.latenciesMs.begin(), res.latenciesMs.end());
    return res;
}

/** Run one routed topology end to end; returns its scen/s. */
double
routerPhase(bench::Env &env, const std::string &cacheDir,
            std::size_t nBackends, std::size_t conns,
            std::size_t perConn, std::size_t &failures)
{
    Fleet fleet(env, cacheDir);
    fleet.start(nBackends);
    RouterUnderTest rt(fleet.endpoints);
    warmThrough(rt.port());
    PhaseResult res = drivePhase(rt.port(), conns, perConn);
    failures += res.failures;
    char phase[32];
    std::snprintf(phase, sizeof(phase), "router-%zu", nBackends);
    return report(phase, nBackends, conns, conns * perConn, res);
}

// ===============================================================
// Kill phase: retrying clients vs a mid-load backend loss
// ===============================================================

/**
 * One failover client: submit @p count scenarios one at a time,
 * retrying retryable errors (busy / rejected_overload / draining)
 * and transport drops with a fresh connection. internal_error is
 * never retryable — it counts as a hard failure.
 */
void
runRetryClient(std::uint16_t port, std::size_t id,
               std::size_t count,
               std::atomic<std::size_t> &completed,
               std::atomic<std::size_t> &retries,
               std::atomic<std::size_t> &hardFailures)
{
    constexpr int maxAttempts = 200;
    TcpStream stream;
    for (std::size_t k = 0; k < count; k++) {
        std::string req = submitLine(id, k);
        bool done = false;
        for (int attempt = 0; attempt < maxAttempts && !done;
             attempt++) {
            if (attempt > 0)
                retries++;
            if (!stream.valid()) {
                auto c = TcpStream::connectTo("127.0.0.1", port);
                if (!c.ok()) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                    continue;
                }
                stream = std::move(c.value());
            }
            std::string line;
            if (!stream.writeAll(req) ||
                stream.readLine(line) !=
                    TcpStream::ReadStatus::Line) {
                stream = TcpStream();
                continue;
            }
            if (line.find("\"ok\":true") != std::string::npos) {
                completed++;
                done = true;
                break;
            }
            if (line.find("\"internal_error\"") !=
                std::string::npos) {
                std::fprintf(stderr,
                             "client %zu got internal_error: %s\n",
                             id, line.c_str());
                hardFailures++;
                done = true;
                break;
            }
            // Retryable shed (busy & co): back off briefly.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        if (!done)
            hardFailures++;
    }
}

} // namespace

int
main()
{
    std::size_t conns = envSize("GPM_BENCH_SHARD_CONNS", 8);
    std::size_t perConn = envSize("GPM_BENCH_SHARD_PER_CONN", 128);

    bench::banner(
        "Sharded fleet scaling",
        "gpm-router over 1/2/4 in-process gpmd backends sharing "
        "one cache dir, vs direct single-gpmd; then a "
        "kill-one-backend failover phase under retrying load.");
    std::printf("%zu conns x %zu warm submits each, %zu-scenario "
                "warm set\n\n",
                conns, perConn, kWarmSet);

    bench::Env env;
    std::string cacheDir = makeCacheDir();
    std::size_t scaleFailures = 0;

    // ---- direct baseline ----
    double directPerSec = 0.0;
    {
        Fleet fleet(env, cacheDir);
        fleet.start(1);
        std::uint16_t port = fleet.endpoints[0].port;
        warmThrough(port);
        PhaseResult res = drivePhase(port, conns, perConn);
        scaleFailures += res.failures;
        directPerSec =
            report("direct-1", 1, conns, conns * perConn, res);
    }

    // ---- routed topologies ----
    routerPhase(env, cacheDir, 1, conns, perConn, scaleFailures);
    double r2PerSec = routerPhase(env, cacheDir, 2, conns, perConn,
                                  scaleFailures);
    routerPhase(env, cacheDir, 4, conns, perConn, scaleFailures);

    // ---- kill-one-backend failover ----
    std::size_t killClients = 4;
    std::size_t killPerClient = kWarmSet * 2;
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> retries{0};
    std::atomic<std::size_t> hardFailures{0};
    std::uint64_t rerouted = 0;
    {
        Fleet fleet(env, cacheDir);
        fleet.start(2);
        RouterUnderTest rt(fleet.endpoints);
        warmThrough(rt.port());

        bench::WallTimer wall;
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < killClients; c++)
            clients.emplace_back(
                runRetryClient, rt.port(), c, killPerClient,
                std::ref(completed), std::ref(retries),
                std::ref(hardFailures));
        // Let the load get going, then take a backend down
        // mid-flight.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(5));
        fleet.stop(0);
        for (auto &t : clients)
            t.join();

        RouterStats rs = rt.router->stats();
        rerouted = rs.rerouted;
        std::uint64_t rehashes = 0;
        for (const auto &b : rs.backends)
            rehashes += b.rehashes;
        PhaseResult res;
        res.wallMs = wall.ms();
        res.failures = hardFailures.load();
        char extra[128];
        std::snprintf(extra, sizeof(extra),
                      ", \"retries\": %zu, \"rerouted\": %llu, "
                      "\"rehashes\": %llu",
                      retries.load(),
                      static_cast<unsigned long long>(rerouted),
                      static_cast<unsigned long long>(rehashes));
        report("router-2-kill", 2, killClients,
               killClients * killPerClient, res, extra);
        std::printf("  kill phase: %zu/%zu completed, %zu retries, "
                    "%llu rerouted, %llu failover placements, "
                    "%llu backend failures seen\n",
                    completed.load(), killClients * killPerClient,
                    retries.load(),
                    static_cast<unsigned long long>(rerouted),
                    static_cast<unsigned long long>(rehashes),
                    static_cast<unsigned long long>(
                        rs.backendFailures));
    }
    removeTree(cacheDir);

    double ratio =
        directPerSec > 0.0 ? r2PerSec / directPerSec : 0.0;
    unsigned hw = std::thread::hardware_concurrency();
    std::printf("\nrouter-2 vs direct-1: %.2fx warm scenarios/sec "
                "(%u hardware threads)\n",
                ratio, hw);

    const char *noEnforce = std::getenv("GPM_BENCH_NO_ENFORCE");
    bool enforce = !(noEnforce && *noEnforce == '1');
    if (enforce && scaleFailures > 0)
        fatal("scaling phases saw %zu request errors",
              scaleFailures);
    if (enforce &&
        (hardFailures.load() > 0 ||
         completed.load() < killClients * killPerClient))
        fatal("kill phase: %zu hard failures, %zu/%zu completed",
              hardFailures.load(), completed.load(),
              killClients * killPerClient);
    if (enforce && hw >= 4 && ratio < 1.6)
        fatal("2-backend warm throughput only %.2fx the direct "
              "single-gpmd baseline (need >= 1.6x)",
              ratio);
    if (hw < 4)
        std::printf("scaling gate skipped: backends are in-process "
                    "threads and this host has %u hardware "
                    "threads (need >= 4 for an honest ratio)\n",
                    hw);
    return 0;
}
