/**
 * @file
 * Reproduces paper Figure 11: average performance degradation of
 * MaxBIPS, optimistic static, and chip-wide DVFS *over the oracle*,
 * as a function of CMP scale (1, 2, 4, 8 cores), averaged over the
 * budget range and the experimented combinations. The whole
 * (scale x combination x budget x method) grid — the largest of the
 * figure benches — runs through the parallel sweep engine.
 *
 * Expected trends: MaxBIPS converges to the oracle with more cores;
 * static saturates ~2% above; chip-wide grows monotonically.
 */

#include <cstdio>
#include <map>

#include "common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto budgets = bench::standardBudgets();

    bench::banner("Figure 11 — policy trends under CMP scaling",
                  "Mean degradation over the oracle, averaged over "
                  "budgets and combinations per scale.");

    // Scale -> combinations. The 1-core "combinations" are the 12
    // individual benchmarks (MaxBIPS == chip-wide there).
    std::map<int, std::vector<std::vector<std::string>>> combos;
    for (const auto &w : spec2000Suite())
        combos[1].push_back({w.name});
    for (const auto &[key, combo] : benchmarkCombinations())
        combos[static_cast<int>(combo.size())].push_back(combo);

    const std::vector<std::string> methods{"Oracle", "MaxBIPS",
                                           "Static", "ChipWideDVFS"};
    SweepSpec spec;
    for (const auto &[cores, sets] : combos)
        for (const auto &combo : sets)
            for (double b : budgets)
                for (const auto &m : methods)
                    spec.add(combo, m, b);

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    auto evals = bench::sweepChecked(runner, spec, threads);
    double par_ms = timer.ms();

    // Consume in the exact spec order.
    std::size_t i = 0;
    Table t({"Cores", "MaxBIPS", "Static", "ChipWideDVFS"});
    for (const auto &[cores, sets] : combos) {
        RunningStat mb, st, cw;
        for (std::size_t c = 0; c < sets.size(); c++) {
            for (std::size_t b = 0; b < budgets.size(); b++) {
                double oracle =
                    evals[i++].metrics.perfDegradation;
                mb.add(evals[i++].metrics.perfDegradation - oracle);
                st.add(evals[i++].metrics.perfDegradation - oracle);
                cw.add(evals[i++].metrics.perfDegradation - oracle);
            }
        }
        t.addRow({std::to_string(cores), Table::pct(mb.mean()),
                  Table::pct(st.mean()), Table::pct(cw.mean())});
    }
    t.print();
    bench::maybeCsv("fig11_scaling_trends", t);
    bench::appendSweepJson("fig11_scaling", spec.size(), threads,
                           0.0, par_ms);

    std::printf("\nExpected shape (paper): MaxBIPS -> 0 with more "
                "cores; static saturates ~2%% above the oracle; "
                "chip-wide grows with core count.\n");
    return 0;
}
