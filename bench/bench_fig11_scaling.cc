/**
 * @file
 * Reproduces paper Figure 11: average performance degradation of
 * MaxBIPS, optimistic static, and chip-wide DVFS *over the oracle*,
 * as a function of CMP scale (1, 2, 4, 8 cores), averaged over the
 * budget range and the experimented combinations.
 *
 * Expected trends: MaxBIPS converges to the oracle with more cores;
 * static saturates ~2% above; chip-wide grows monotonically.
 */

#include <cstdio>
#include <map>

#include "common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto budgets = bench::standardBudgets();

    bench::banner("Figure 11 — policy trends under CMP scaling",
                  "Mean degradation over the oracle, averaged over "
                  "budgets and combinations per scale.");

    // Scale -> combinations. The 1-core "combinations" are the 12
    // individual benchmarks (MaxBIPS == chip-wide there).
    std::map<int, std::vector<std::vector<std::string>>> combos;
    for (const auto &w : spec2000Suite())
        combos[1].push_back({w.name});
    for (const auto &[key, combo] : benchmarkCombinations())
        combos[static_cast<int>(combo.size())].push_back(combo);

    Table t({"Cores", "MaxBIPS", "Static", "ChipWideDVFS"});
    for (auto &[cores, sets] : combos) {
        RunningStat mb, st, cw;
        for (const auto &combo : sets) {
            for (double b : budgets) {
                double oracle =
                    runner.evaluate(combo, "Oracle", b)
                        .metrics.perfDegradation;
                mb.add(runner.evaluate(combo, "MaxBIPS", b)
                           .metrics.perfDegradation -
                       oracle);
                st.add(runner.evaluateStatic(combo, b)
                           .metrics.perfDegradation -
                       oracle);
                cw.add(runner.evaluate(combo, "ChipWideDVFS", b)
                           .metrics.perfDegradation -
                       oracle);
            }
        }
        t.addRow({std::to_string(cores), Table::pct(mb.mean()),
                  Table::pct(st.mean()), Table::pct(cw.mean())});
    }
    t.print();
    bench::maybeCsv("fig11_scaling_trends", t);

    std::printf("\nExpected shape (paper): MaxBIPS -> 0 with more "
                "cores; static saturates ~2%% above the oracle; "
                "chip-wide grows with core count.\n");
    return 0;
}
