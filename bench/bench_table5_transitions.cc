/**
 * @file
 * Reproduces paper Table 5: DVFS transition overheads for the three
 * mode transitions at a 10 mV/us regulator slew rate, plus the BIPS
 * transition-discount factors of Section 5.5.
 */

#include <cstdio>

#include "common.hh"
#include "core/mode_predictor.hh"
#include "power/dvfs.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::banner("Table 5 — DVFS transition overheads",
                  "Voltage deltas and transition times at 10 mV/us; "
                  "explore interval 500 us.");

    auto dvfs = DvfsTable::classic3();
    ModePredictor pred(dvfs, 500.0);

    Table t({"Transition", "dV [mV]", "t [us]",
             "Overhead vs 500us", "BIPS scale factor"});
    auto row = [&](PowerMode a, PowerMode b) {
        double dv =
            (dvfs.voltage(a) - dvfs.voltage(b)) * 1000.0;
        double us = dvfs.transitionUs(a, b);
        t.addRow({dvfs.point(a).name + std::string(" <-> ") +
                      dvfs.point(b).name,
                  Table::num(dv < 0 ? -dv : dv, 0),
                  Table::num(us, 1), Table::pct(us / 500.0),
                  "500/" + Table::num(500.0 + us, 1)});
    };
    row(modes::Turbo, modes::Eff1);
    row(modes::Eff1, modes::Eff2);
    row(modes::Turbo, modes::Eff2);
    t.print();

    std::printf("\nPaper Table 5 reference: 65 mV/6.5 us, "
                "130 mV/13 us, 195 mV/19.5 us "
                "(scale factors ~500/507, 500/513, 500/520).\n");
    return 0;
}
