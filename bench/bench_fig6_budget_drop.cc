/**
 * @file
 * Reproduces paper Figure 6: MaxBIPS execution timeline of
 * (ammp, mcf, crafty, art) where the chip budget drops from 90% to
 * 70% mid-run (e.g. a cooling failure). Reports the per-application
 * power stack, the per-application performance as % of all-Turbo
 * chip BIPS, and the average BIPS reduction in the two budget
 * regions (paper: ~1% and ~5%).
 *
 * This figure is one timeline simulation, so there is nothing for
 * the sweep engine to fan out; it stays serial on purpose.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    std::vector<std::string> combo{"ammp", "mcf", "crafty", "art"};

    bench::banner("Figure 6 — MaxBIPS under a budget drop 90% -> "
                  "70%",
                  "Per-application power and performance "
                  "contributions over time.");

    Watts ref = runner.referencePowerW(combo);
    double ref_bips = runner.reference(combo).chipBips();
    MicroSec drop_us = 5000.0 * env.scale;
    BudgetSchedule sched({{0.0, 0.9}, {drop_us, 0.7}});
    SimResult res = runner.timeline(combo, "MaxBIPS", sched);

    std::printf("budget drops at t = %.0f us; run ends %.0f us\n\n",
                drop_us, res.endUs);
    std::printf("%8s | %28s | %28s | %6s %6s\n", "t [us]",
                "power [% of max, per app]",
                "bips [% of turbo, per app]", "TOTp%", "TOTb%");
    for (std::size_t i = 0; i < res.timeline.size(); i += 10) {
        const auto &tp = res.timeline[i];
        std::printf("%8.0f | ", tp.tUs);
        double totp = 0.0, totb = 0.0;
        for (std::size_t c = 0; c < combo.size(); c++) {
            std::printf("%6.1f ", tp.corePowerW[c] / ref * 100.0);
            totp += tp.corePowerW[c];
        }
        std::printf("| ");
        for (std::size_t c = 0; c < combo.size(); c++) {
            std::printf("%6.1f ",
                        tp.coreBips[c] / ref_bips * 100.0);
            totb += tp.coreBips[c];
        }
        std::printf("| %6.1f %6.1f\n", totp / ref * 100.0,
                    totb / ref_bips * 100.0);
    }

    // Average BIPS reduction per region.
    double b_hi = 0.0, b_lo = 0.0;
    int n_hi = 0, n_lo = 0;
    for (const auto &tp : res.timeline) {
        double b = 0.0;
        for (double x : tp.coreBips)
            b += x;
        if (tp.tUs < drop_us) {
            b_hi += b;
            n_hi++;
        } else {
            b_lo += b;
            n_lo++;
        }
    }
    if (n_hi && n_lo) {
        std::printf("\navg BIPS vs all-Turbo: %.1f%% in the 90%% "
                    "region, %.1f%% in the 70%% region\n",
                    b_hi / n_hi / ref_bips * 100.0,
                    b_lo / n_lo / ref_bips * 100.0);
        std::printf("(paper: reductions of ~1%% and ~5%% in the two "
                    "regions; instantaneous BIPS may exceed 100%%)\n");
    }
    return 0;
}
