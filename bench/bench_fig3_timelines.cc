/**
 * @file
 * Reproduces paper Figure 3: chip power timelines under chip-wide
 * DVFS vs MaxBIPS for a fixed 83% budget, on (ammp, mcf, crafty,
 * art) and on (ammp, crafty, art, sixtrack) — one memory-bound
 * benchmark swapped for a CPU-bound one. Chip-wide DVFS fits the
 * first combination but collapses to all-Eff2 on the second;
 * MaxBIPS tracks the budget for both. The four timeline simulations
 * are independent, so they run in parallel; printing stays serial
 * and in order.
 */

#include <cstdio>

#include "common.hh"
#include "sim/cmp_sim.hh"
#include "util/table.hh"

namespace
{

using namespace gpm;

struct TimelineCase {
    std::vector<std::string> combo;
    const char *policy;
    double budgetFrac;
    SimResult res;
    Watts refW = 0.0;
};

void
timelineReport(const TimelineCase &tc)
{
    std::printf("-- %s on (", tc.policy);
    for (std::size_t i = 0; i < tc.combo.size(); i++)
        std::printf("%s%s", i ? ", " : "", tc.combo[i].c_str());
    std::printf("), budget %.0f%%\n", tc.budgetFrac * 100.0);
    std::printf("%10s %12s %12s\n", "t [us]", "TOT_PWR [%]",
                "budget [%]");

    // Print every 10th delta step (one line per explore interval).
    for (std::size_t i = 0; i < tc.res.timeline.size(); i += 10) {
        const auto tp = tc.res.timeline[i];
        std::printf("%10.0f %11.1f%% %11.1f%%\n", tp.tUs,
                    tp.totalPowerW / tc.refW * 100.0,
                    tp.budgetW / tc.refW * 100.0);
    }
    // Summary: time-average power and fraction of intervals within
    // the budget.
    double avg = 0.0;
    int within = 0;
    for (const auto tp : tc.res.timeline) {
        avg += tp.totalPowerW;
        if (tp.totalPowerW <= tp.budgetW * 1.02)
            within++;
    }
    avg /= static_cast<double>(tc.res.timeline.size());
    std::printf("avg power: %.1f%% of max; %.0f%% of intervals "
                "within budget; end at %.0f us\n\n",
                avg / tc.refW * 100.0,
                100.0 * within /
                    static_cast<double>(tc.res.timeline.size()),
                tc.res.endUs);
}

} // namespace

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    bench::banner("Figure 3 — chip-wide DVFS vs MaxBIPS timelines",
                  "Total chip power (as % of the all-Turbo maximum) "
                  "against the 83% budget.");

    // The paper contrasts two workload mixes at one budget relative
    // to a fixed chip envelope; our budgets are per-combination
    // all-Turbo references, so the same contrast — chip-wide either
    // *just fits* at a uniform mode or collapses to all-Eff2 for a
    // tiny overshoot — appears across two nearby budgets. Both
    // regimes and the MaxBIPS comparison are shown for the paper's
    // two benchmark sets.
    std::vector<std::string> combo_a{"ammp", "mcf", "crafty", "art"};
    std::vector<std::string> combo_b{"ammp", "crafty", "art",
                                     "sixtrack"};
    std::vector<TimelineCase> cases;
    cases.push_back({combo_a, "ChipWideDVFS", 0.88, {}, 0.0});
    cases.push_back({combo_a, "MaxBIPS", 0.88, {}, 0.0});
    cases.push_back({combo_b, "ChipWideDVFS", 0.83, {}, 0.0});
    cases.push_back({combo_b, "MaxBIPS", 0.83, {}, 0.0});

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, cases.size(), [&](std::size_t i) {
        auto &tc = cases[i];
        tc.res = runner.timeline(tc.combo, tc.policy,
                                 BudgetSchedule(tc.budgetFrac));
        tc.refW = runner.referencePowerW(tc.combo);
    });
    double par_ms = timer.ms();

    for (const auto &tc : cases)
        timelineReport(tc);
    bench::appendSweepJson("fig3_timelines", cases.size(), threads,
                           0.0, par_ms);

    std::printf("Expected shape (paper Fig 3): in the fitting "
                "regime chip-wide sits at uniform Eff1 just under "
                "the budget; past the crossover it collapses to "
                "all-Eff2 and leaves ~20%% of the budget unused "
                "('huge penalty for small budget overshoots'); "
                "MaxBIPS tracks the budget in both regimes.\n");
    return 0;
}
