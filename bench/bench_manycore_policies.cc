/**
 * @file
 * Many-core policy-engine benchmark: decision latency and solution
 * quality of the approximate MaxBIPS policies (MaxBIPS-DP,
 * WaterFill, GreedyTurbo) against the paper's 500 µs explore
 * interval, at N ∈ {8, 64, 256, 1024} cores and k = 5 DVFS modes.
 *
 * Per (N, policy) the bench builds a predicted ModeMatrix from the
 * real workload profiles — core c runs suite[c % 12] phase-shifted
 * by frac(c·φ) via ProfileCursor::seekFraction — then measures
 * solve() latency over GPM_MANYCORE_ITERS iterations (p50/p99) and
 * the BIPS gap vs a quality reference. The bench pins itself to
 * one CPU, runs a multi-iteration untimed warmup, and trims the
 * slowest 2% of samples before taking p99 — scheduler migrations
 * and first-touch faults otherwise put a 3x outlier tail on
 * microsecond-scale solves (the old single-warmup p99 wobbled
 * 7 -> 23 µs run to run). The quality reference is: the exact branch-and-bound
 * optimum at small N (≤ 16), the MCKP LP upper bound at larger N
 * (where exact search is unaffordable; the LP bound over-estimates
 * the true optimum, so reported gaps are conservative).
 *
 * Results go to stdout and to BENCH_sweep.json as one NDJSON record
 * per (N, policy):
 *
 *   { "bench": "manycore_policies", "n_cores": N, "n_modes": 5,
 *     "policy": ..., "iters": I, "p50_us": ..., "p99_us": ...,
 *     "budget_frac": 0.75, "bips": ..., "ref_bips": ...,
 *     "ref_kind": "bnb" | "lp", "gap_pct": ..., "scale": S }
 *
 * Knobs: GPM_MANYCORE_N (comma list, default "8,64,256,1024"),
 * GPM_MANYCORE_ITERS (default 100), plus GPM_SCALE /
 * GPM_PROFILE_CACHE / GPM_PROFILE_CACHE_DIR. The 5-mode profiles
 * get their own monolithic cache file (<cache>.k5[.sS]) so they
 * never clobber the 3-mode suite cache.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <sched.h>

#include "common.hh"
#include "core/mckp.hh"
#include "core/policies.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"

namespace
{

using namespace gpm;

/** Golden-ratio conjugate: maximally spread phase shifts. */
constexpr double phi = 0.6180339887498949;

/** Exact search stays affordable up to this many cores. */
constexpr std::size_t exactRefMaxCores = 16;

std::vector<std::size_t>
coreCountsFromEnv()
{
    const char *s = std::getenv("GPM_MANYCORE_N");
    if (!s || !*s)
        return {8, 64, 256, 1024};
    std::vector<std::size_t> ns;
    std::string tok;
    for (const char *p = s;; p++) {
        if (*p == ',' || *p == '\0') {
            if (!tok.empty()) {
                long v = std::atol(tok.c_str());
                if (v >= 1 &&
                    v <= static_cast<long>(maxManyCoreCores))
                    ns.push_back(static_cast<std::size_t>(v));
                tok.clear();
            }
            if (*p == '\0')
                break;
        } else {
            tok += *p;
        }
    }
    if (ns.empty())
        fatal("GPM_MANYCORE_N '%s' has no valid core counts", s);
    return ns;
}

std::size_t
itersFromEnv()
{
    const char *s = std::getenv("GPM_MANYCORE_ITERS");
    if (!s || !*s)
        return 100;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::size_t>(v) : 100;
}

/** Percentile of an ascending-sorted sample [same unit as input]. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double idx = p * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double f = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - f) + sorted[hi] * f;
}

/** Fraction of the slowest samples dropped before taking p99:
 *  migration/IRQ outliers, not solver behaviour. */
constexpr double trimFrac = 0.02;

/** p99 of the ascending-sorted sample after trimming the slowest
 *  trimFrac (at least one sample, never the whole set). */
double
trimmedP99(const std::vector<double> &sorted)
{
    std::size_t drop = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(sorted.size()) * trimFrac));
    if (drop >= sorted.size())
        drop = sorted.size() - 1;
    std::vector<double> kept(sorted.begin(),
                             sorted.end() - drop);
    return percentile(kept, 0.99);
}

/** Pin this thread to the CPU it is on (best-effort): latency
 *  percentiles should measure the solver, not scheduler
 *  migrations mid-iteration. */
void
pinToCurrentCpu()
{
    int cpu = ::sched_getcpu();
    if (cpu < 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    ::sched_setaffinity(0, sizeof(set), &set);
}

/**
 * Predicted ModeMatrix of an N-core many-core scenario: core c runs
 * suite workload c % 12 phase-shifted by frac(c·φ), each mode's
 * (power, BIPS) taken from a 500 µs profile peek — the same numbers
 * a GlobalManager's predictor would see at an explore boundary.
 */
ModeMatrix
buildMatrix(ProfileLibrary &lib, const DvfsTable &dvfs,
            std::size_t n)
{
    const auto &combo = manyCoreCombo(n);
    ModeMatrix m(n, dvfs.numModes());
    for (std::size_t c = 0; c < n; c++) {
        ProfileCursor cur(lib.get(combo[c]));
        double f = static_cast<double>(c) * phi;
        cur.seekFraction(f - std::floor(f));
        for (std::size_t mi = 0; mi < dvfs.numModes(); mi++) {
            auto mode = static_cast<PowerMode>(mi);
            auto d = cur.peek(500.0, mode);
            if (d.usedUs <= 0.0)
                continue; // empty profile: zero row entry
            m.powerW(c, mode) = d.energyJ / (d.usedUs * 1e-6);
            m.bips(c, mode) = d.instructions / (d.usedUs * 1000.0);
        }
    }
    return m;
}

struct PolicyUnderTest
{
    const char *name;
    std::function<std::vector<PowerMode>(const ModeMatrix &, Watts)>
        solve;
};

} // namespace

int
main()
{
    bench::banner(
        "Many-core policy engine",
        "Decision latency (p50/p99 vs the 500 us interval) and BIPS "
        "gap of the approximate MaxBIPS policies at 8-1024 cores, "
        "k = 5 modes.");

    // k = 5 linear modes: the many-core frontier needs more than the
    // paper's 3 points to differentiate DP/water-fill/greedy.
    DvfsTable dvfs = DvfsTable::linear(5);
    double scale = bench::scaleFromEnv();
    ProfileLibrary lib(dvfs, scale);
    if (std::string dir = bench::cacheDirFromEnv(); !dir.empty()) {
        lib.attachStore(dir);
        lib.buildSuite();
    } else {
        std::string path = bench::cachePathFromEnv() + ".k5";
        if (scale != 1.0) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), ".s%g", scale);
            path += buf;
        }
        lib.loadOrBuild(path);
    }

    const std::vector<std::size_t> core_counts = coreCountsFromEnv();
    const std::size_t iters = itersFromEnv();
    const double budget_frac = 0.75;

    pinToCurrentCpu();

    const std::vector<PolicyUnderTest> policies = {
        {"MaxBIPS-DP",
         [](const ModeMatrix &m, Watts b) {
             return MaxBipsDpPolicy::solve(
                 m, b, MaxBipsDpPolicy::defaultGrid);
         }},
        {"WaterFill",
         [](const ModeMatrix &m, Watts b) {
             return WaterFillPolicy::solve(m, b);
         }},
        {"GreedyTurbo",
         [](const ModeMatrix &m, Watts b) {
             return GreedyTurboPolicy::solve(m, b);
         }},
    };

    Table t({"cores", "policy", "p50 [us]", "p99 [us]", "BIPS",
             "ref BIPS", "ref", "gap"});

    for (std::size_t n : core_counts) {
        ModeMatrix m = buildMatrix(lib, dvfs, n);
        // Budget: 75% of the all-Turbo chip power, via the SoA
        // column view (one contiguous pass over mode 0).
        ModeColumns cols = ModeColumns::fromMatrix(m);
        Watts budget = budget_frac * cols.uniformPowerW(modes::Turbo);

        // Quality reference: exact BnB where affordable, the MCKP
        // LP upper bound beyond that.
        const bool exact = n <= exactRefMaxCores;
        double ref_bips;
        if (exact) {
            auto best = MaxBipsPolicy::solve(
                m, budget, MaxBipsPolicy::Search::BranchAndBound);
            ref_bips = m.totalBips(best);
        } else {
            ref_bips = mckpUpperBound(buildFrontiers(m), budget);
        }

        for (const auto &p : policies) {
            std::vector<double> lat_us(iters, 0.0);
            // Untimed warmup passes: fault in scratch buffers,
            // caches and the branch history so the percentiles
            // reflect steady-state decisions (one pass left the
            // first timed iterations cold enough to dominate p99).
            std::vector<PowerMode> assign = p.solve(m, budget);
            for (std::size_t w = 1;
                 w < std::min<std::size_t>(iters, 16); w++)
                assign = p.solve(m, budget);
            for (std::size_t i = 0; i < iters; i++) {
                auto t0 = std::chrono::steady_clock::now();
                assign = p.solve(m, budget);
                lat_us[i] =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            }
            std::sort(lat_us.begin(), lat_us.end());
            double p50 = percentile(lat_us, 0.50);
            double p99 = trimmedP99(lat_us);
            double bips = m.totalBips(assign);
            Watts power = m.totalPowerW(assign);
            if (power > budget + 1e-9)
                fatal("%s busts the budget at n=%zu "
                      "(%.3f W > %.3f W)",
                      p.name, n, power, budget);
            double gap = ref_bips > 0.0
                ? (ref_bips - bips) / ref_bips
                : 0.0;

            t.addRow({std::to_string(n), p.name, Table::num(p50),
                      Table::num(p99), Table::num(bips),
                      Table::num(ref_bips), exact ? "bnb" : "lp",
                      Table::pct(gap)});

            char rec[512];
            std::snprintf(
                rec, sizeof(rec),
                "{ \"bench\": \"manycore_policies\", "
                "\"n_cores\": %zu, \"n_modes\": %zu, "
                "\"policy\": \"%s\", \"iters\": %zu, "
                "\"p50_us\": %.2f, \"p99_us\": %.2f, "
                "\"p99_trim_pct\": %g, "
                "\"budget_frac\": %.2f, \"bips\": %.4f, "
                "\"ref_bips\": %.4f, \"ref_kind\": \"%s\", "
                "\"gap_pct\": %.3f, \"scale\": %g }",
                n, dvfs.numModes(), p.name, iters, p50, p99,
                trimFrac * 100.0, budget_frac, bips, ref_bips,
                exact ? "bnb" : "lp", gap * 100.0, scale);
            bench::appendBenchLine(rec);
        }
    }

    t.print();
    bench::maybeCsv("manycore_policies", t);
    std::printf("\nGaps vs \"lp\" are against the fractional MCKP "
                "upper bound (>= the true optimum);\ngaps vs "
                "\"bnb\" are against the exact integer optimum.\n");
    return 0;
}
