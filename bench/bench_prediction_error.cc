/**
 * @file
 * Reproduces paper Section 5.5's prediction-accuracy numbers: the
 * mean relative error of the Power/BIPS matrix predictions scored
 * against the realized next-interval measurements, across the
 * benchmark combinations (paper: 0.1-0.3% for power, 2-4% for
 * BIPS; power errors stem from utilization shifts, BIPS errors from
 * memory-boundedness changes across explore intervals).
 */

#include <cstdio>

#include "common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();

    bench::banner("Section 5.5 — mode-prediction accuracy",
                  "Mean |relative error| of predicted power/BIPS "
                  "vs realized behaviour, MaxBIPS @ 80% budget.");

    Table t({"Combination", "Power error", "BIPS error",
             "Decisions", "Overshoots"});
    RunningStat pe, be;
    for (const auto &[key, combo] : benchmarkCombinations()) {
        auto ev = runner.evaluate(combo, "MaxBIPS", 0.8);
        pe.add(ev.predPowerError);
        be.add(ev.predBipsError);
        t.addRow({key, Table::pct(ev.predPowerError, 2),
                  Table::pct(ev.predBipsError, 2),
                  std::to_string(ev.managerStats.decisions),
                  std::to_string(ev.managerStats.overshoots)});
    }
    t.addRow({"MEAN", Table::pct(pe.mean(), 2),
              Table::pct(be.mean(), 2), "", ""});
    t.print();
    bench::maybeCsv("sec55_prediction_error", t);

    std::printf("\nExpected shape (paper): power errors an order "
                "of magnitude smaller than BIPS errors; BIPS "
                "errors a few percent. Budget safety relies on the "
                "tight power predictions; overshoots are corrected "
                "at the next explore time.\n");
    return 0;
}
