/**
 * @file
 * Ablation (paper Section 5.1): transition-overhead assumptions.
 * The paper conservatively stalls every core for the longest
 * per-core transition; some implementations can execute through
 * transitions. This bench quantifies what the conservative choice
 * costs by comparing stall vs execute-through runs, and how a slower
 * voltage regulator (2 mV/us instead of 10 mV/us: 5x longer
 * transitions) changes MaxBIPS behaviour — including how the policy
 * naturally switches less when switching is dearer. The six
 * (scenario x budget) points are independent and fan out across the
 * pool; runners live behind unique_ptr because each scenario has
 * its own DVFS table and SimConfig.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common.hh"
#include "sim/cmp_sim.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto combo = combination("4way1");

    bench::banner("Ablation — DVFS transition handling",
                  "MaxBIPS on (ammp, mcf, crafty, art) under "
                  "different transition assumptions, budgets 70% "
                  "and 85%.");

    struct Scenario
    {
        const char *name;
        bool stall;
        double slew; // V/s
    };
    const std::vector<Scenario> scenarios{
        {"stall, 10 mV/us (paper)", true, 10e-3 * 1e6},
        {"execute-through, 10 mV/us", false, 10e-3 * 1e6},
        {"stall, 2 mV/us (slow VRM)", true, 2e-3 * 1e6},
    };
    const std::vector<double> budgets{0.70, 0.85};

    // One runner per scenario; the tables must outlive the runners
    // that reference them, so both live in stable containers.
    std::vector<std::unique_ptr<DvfsTable>> tables;
    std::vector<std::unique_ptr<ExperimentRunner>> runners;
    for (const auto &sc : scenarios) {
        // Same operating points, different slew -> same profiles.
        tables.push_back(std::make_unique<DvfsTable>(
            std::vector<OperatingPoint>{{"Turbo", 1.00, 1.00},
                                        {"Eff1", 0.95, 0.95},
                                        {"Eff2", 0.85, 0.85}},
            1.300, 1.0e9, sc.slew));
        SimConfig cfg;
        cfg.stallDuringTransitions = sc.stall;
        runners.push_back(std::make_unique<ExperimentRunner>(
            env.lib, *tables.back(), cfg));
    }

    const std::size_t points = scenarios.size() * budgets.size();
    std::vector<PolicyEval> evals(points);
    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, points, [&](std::size_t i) {
        std::size_t s = i / budgets.size();
        std::size_t b = i % budgets.size();
        evals[i] =
            runners[s]->evaluate(combo, "MaxBIPS", budgets[b]);
    });
    double par_ms = timer.ms();

    Table t({"Scenario", "Budget", "Perf degradation",
             "Mode switches", "Power/budget"});
    for (std::size_t i = 0; i < points; i++) {
        const auto &sc = scenarios[i / budgets.size()];
        const auto &ev = evals[i];
        t.addRow({sc.name, Table::pct(budgets[i % budgets.size()], 0),
                  Table::pct(ev.metrics.perfDegradation),
                  std::to_string(ev.managerStats.modeSwitches),
                  Table::pct(ev.metrics.powerOverBudget)});
    }
    t.print();
    bench::appendSweepJson("ablation_transitions", points, threads,
                           0.0, par_ms);

    std::printf("\nExpected shape: execute-through recovers a "
                "fraction of a percent (transitions are 1-4%% of "
                "an explore interval); a 5x slower regulator makes "
                "transitions 32-98 us — the predictor's transition "
                "discount then suppresses marginal switches and "
                "degradation rises only mildly.\n");
    return 0;
}
