/**
 * @file
 * Reproduces paper Figure 5: achieved power savings vs performance
 * degradation for each policy across the full budget range, against
 * the 3:1 design-target line.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto combo = combination("4way1");
    auto budgets = bench::standardBudgets();

    bench::banner("Figure 5 — power saving : performance "
                  "degradation per policy",
                  "(ammp, mcf, crafty, art); the design target is "
                  "the 3:1 line (points above it are better).");

    for (const char *policy :
         {"Priority", "PullHiPushLo", "MaxBIPS", "ChipWideDVFS"}) {
        std::printf("-- %s\n", policy);
        Table t({"Budget", "Power saving", "Perf degradation",
                 "Ratio", ">= 3:1"});
        for (double b : budgets) {
            auto ev = runner.evaluate(combo, policy, b);
            double save = ev.metrics.powerSavings;
            double degr = ev.metrics.perfDegradation;
            double ratio = degr > 1e-6 ? save / degr : 99.0;
            t.addRow({Table::pct(b, 1), Table::pct(save),
                      Table::pct(degr), Table::num(ratio, 1) + ":1",
                      ratio >= 3.0 ? "yes" : "no"});
        }
        t.print();
        std::printf("\n");
    }

    std::printf("Expected shape (paper): all per-core policies "
                "track ~3:1 or better; MaxBIPS significantly "
                "better via dynamic assignment; savings saturate "
                "near the all-Eff2 floor (~38%%).\n");
    return 0;
}
