/**
 * @file
 * Reproduces paper Figure 5: achieved power savings vs performance
 * degradation for each policy across the full budget range, against
 * the 3:1 design-target line. The (policy x budget) grid is
 * evaluated through the parallel sweep engine.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto combo = combination("4way1");
    auto budgets = bench::standardBudgets();
    const std::vector<std::string> policies{
        "Priority", "PullHiPushLo", "MaxBIPS", "ChipWideDVFS"};

    bench::banner("Figure 5 — power saving : performance "
                  "degradation per policy",
                  "(ammp, mcf, crafty, art); the design target is "
                  "the 3:1 line (points above it are better).");

    SweepSpec spec;
    spec.addGrid({combo}, policies, budgets);

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    auto evals = bench::sweepChecked(runner, spec, threads);
    double par_ms = timer.ms();

    for (std::size_t p = 0; p < policies.size(); p++) {
        std::printf("-- %s\n", policies[p].c_str());
        Table t({"Budget", "Power saving", "Perf degradation",
                 "Ratio", ">= 3:1"});
        for (std::size_t b = 0; b < budgets.size(); b++) {
            const auto &ev = evals[p * budgets.size() + b];
            double save = ev.metrics.powerSavings;
            double degr = ev.metrics.perfDegradation;
            double ratio = degr > 1e-6 ? save / degr : 99.0;
            t.addRow({Table::pct(budgets[b], 1), Table::pct(save),
                      Table::pct(degr), Table::num(ratio, 1) + ":1",
                      ratio >= 3.0 ? "yes" : "no"});
        }
        t.print();
        std::printf("\n");
    }
    bench::appendSweepJson("fig5_savings_ratio", spec.size(),
                           threads, 0.0, par_ms);

    std::printf("Expected shape (paper): all per-core policies "
                "track ~3:1 or better; MaxBIPS significantly "
                "better via dynamic assignment; savings saturate "
                "near the all-Eff2 floor (~38%%).\n");
    return 0;
}
