/**
 * @file
 * Reproduces paper Tables 3 and 4: the power-mode design targets and
 * the analytic DVFS power/performance estimates (cubic power, linear
 * performance upper bound) for Turbo / Eff1 / Eff2.
 */

#include <cstdio>

#include "common.hh"
#include "power/dvfs.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::banner("Table 3/4 — DVFS mode estimates",
                  "Analytic power savings (1 - s^3) and performance "
                  "degradation upper bound (1 - s) per mode, vs the "
                  "paper's 3:1 design target.");

    auto dvfs = DvfsTable::classic3();
    Table t({"Mode", "Vdd [V]", "f [GHz]", "Power savings",
             "Perf degradation (bound)", "Ratio"});
    for (std::size_t mi = 0; mi < dvfs.numModes(); mi++) {
        auto m = static_cast<PowerMode>(mi);
        double save = 1.0 - dvfs.powerScale(m);
        double degr = 1.0 - dvfs.perfScale(m);
        t.addRow({dvfs.point(m).name, Table::num(dvfs.voltage(m), 3),
                  Table::num(dvfs.frequency(m) / 1e9, 2),
                  Table::pct(save), Table::pct(degr),
                  degr > 0.0 ? Table::num(save / degr, 2) + ":1"
                             : "-"});
    }
    t.addRow({"(target)", "", "", "3X", "1X", "3:1"});
    t.print();

    std::printf("\nPaper Table 4 reference: Eff1 ~14.3%% / 5%%, "
                "Eff2 ~38.6%% / 15%%.\n");
    return 0;
}
