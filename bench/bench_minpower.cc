/**
 * @file
 * Extension: the paper's stated-but-unexplored dual problem
 * (Section 1) — minimize chip power for a given performance target.
 * Sweeps throughput targets on the heterogeneous 4-way mix and
 * reports the power the MinPower policy pays, the performance it
 * actually delivers, and the duality check against MaxBIPS run at
 * the budget MinPower settled on.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto combo = combination("4way1");
    Watts ref = runner.referencePowerW(combo);

    bench::banner("Dual problem — minimum power for a performance "
                  "target",
                  "(ammp, mcf, crafty, art); targets as % of "
                  "all-Turbo chip BIPS.");

    Table t({"Perf target", "Achieved perf", "Power used",
             "Power savings", "MaxBIPS@that budget"});
    for (double target : {0.85, 0.90, 0.95, 0.98, 1.0}) {
        char name[32];
        std::snprintf(name, sizeof(name), "MinPower%d",
                      static_cast<int>(target * 100 + 0.5));
        auto ev = runner.evaluate(combo, name, 1.0);
        double used_frac = ev.metrics.avgChipPowerW / ref;
        // Duality check: give MaxBIPS the power MinPower used.
        auto dual = runner.evaluate(combo, "MaxBIPS", used_frac);
        t.addRow({Table::pct(target, 0),
                  Table::pct(1.0 - ev.metrics.perfDegradation),
                  Table::pct(used_frac),
                  Table::pct(ev.metrics.powerSavings),
                  Table::pct(1.0 - dual.metrics.perfDegradation)});
    }
    t.print();
    bench::maybeCsv("minpower_dual", t);

    std::printf("\nExpected shape: achieved perf tracks the target "
                "(small shortfall from prediction error and "
                "transitions); the power needed falls steeply as "
                "the target relaxes — the mirror image of the "
                "policy curves; MaxBIPS at the same power delivers "
                "comparable performance (duality).\n");
    return 0;
}
