/**
 * @file
 * Ablation (paper Section 5.3 discussion): how the number of DVFS
 * modes changes the picture. The paper argues chip-wide DVFS could
 * close some of its gap with more modes, but that the required mode
 * count grows with core count. We profile the suite under linear
 * DVFS tables with 3/4/5/7 modes and compare MaxBIPS and chip-wide
 * degradation at a fixed budget. The mode-count scenarios are fully
 * independent (own table, own profile cache), so each runs on its
 * own thread.
 *
 * Uses a reduced length scale (its own profile caches) since each
 * mode-count needs a fresh profiling pass.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    double scale = 0.1;
    if (const char *s = std::getenv("GPM_ABLATION_SCALE"))
        scale = std::atof(s);

    bench::banner("Ablation — DVFS mode-count sensitivity",
                  "MaxBIPS vs chip-wide degradation at an 80% "
                  "budget, (ammp, mcf, crafty, art), as the mode "
                  "count grows (linear tables 1.0 .. 0.85).");

    auto combo = combination("4way1");
    const std::vector<std::size_t> mode_counts{2, 3, 4, 5, 7};
    std::vector<std::vector<std::string>> rows(mode_counts.size());

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, mode_counts.size(), [&](std::size_t i) {
        std::size_t n = mode_counts[i];
        DvfsTable dvfs = DvfsTable::linear(n, 0.85);
        ProfileLibrary lib(dvfs, scale);
        char path[128];
        std::snprintf(path, sizeof(path),
                      "gpm_profiles_m%zu_s%g.bin", n, scale);
        lib.loadOrBuild(path);
        ExperimentRunner runner(lib, dvfs);
        auto mb = runner.evaluate(combo, "MaxBIPS", 0.8);
        auto cw = runner.evaluate(combo, "ChipWideDVFS", 0.8);
        rows[i] = {std::to_string(n),
                   Table::pct(mb.metrics.perfDegradation),
                   Table::pct(cw.metrics.perfDegradation),
                   Table::pct(cw.metrics.powerOverBudget)};
    });
    double par_ms = timer.ms();

    Table t({"Modes", "MaxBIPS degr.", "ChipWide degr.",
             "ChipWide budget use"});
    for (const auto &row : rows)
        t.addRow(row);
    t.print();
    bench::appendSweepJson("ablation_modes", mode_counts.size(),
                           threads, 0.0, par_ms);

    std::printf("\nExpected shape: more modes help chip-wide DVFS "
                "exploit budget slack (budget use rises toward "
                "100%%, degradation falls), narrowing but not "
                "closing the gap to per-core MaxBIPS.\n");
    return 0;
}
