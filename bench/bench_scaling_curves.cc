/**
 * @file
 * Reproduces paper Figures 8, 9 and 10: policy curves (ChipWideDVFS,
 * Static, MaxBIPS, Oracle) for every Table 2 benchmark combination
 * at 2-, 4- and 8-way CMP scales. Built as one source compiled into
 * three binaries (GPM_FIG selects 8/9/10). The whole
 * (combination x method x budget) grid fans out through the parallel
 * sweep engine in one call.
 */

#include <cstdio>
#include <cstring>

#include "common.hh"
#include "util/table.hh"

#ifndef GPM_FIG_WAYS
#define GPM_FIG_WAYS 4
#endif

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto budgets = bench::standardBudgets();
    const std::vector<std::string> methods{"ChipWideDVFS", "Static",
                                           "MaxBIPS", "Oracle"};

    const char *fig = GPM_FIG_WAYS == 2
        ? "Figure 8 — 2-way CMP power management"
        : GPM_FIG_WAYS == 4 ? "Figure 9 — 4-way CMP power management"
                            : "Figure 10 — 8-way CMP power "
                              "management";
    bench::banner(fig,
                  "Performance degradation vs budget for each "
                  "Table 2 combination.");

    char prefix[8];
    std::snprintf(prefix, sizeof(prefix), "%dway", GPM_FIG_WAYS);

    std::vector<std::string> keys;
    std::vector<std::vector<std::string>> combos;
    for (const auto &[key, combo] : benchmarkCombinations()) {
        if (key.rfind(prefix, 0) != 0)
            continue;
        keys.push_back(key);
        combos.push_back(combo);
    }

    SweepSpec spec;
    spec.addGrid(combos, methods, budgets);

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    auto flat = bench::sweepChecked(runner, spec, threads);
    double par_ms = timer.ms();

    // Grid order is combo-major, then method, then budget.
    auto at = [&](std::size_t c, std::size_t m,
                  std::size_t b) -> const PolicyEval & {
        return flat[(c * methods.size() + m) * budgets.size() + b];
    };

    for (std::size_t c = 0; c < keys.size(); c++) {
        std::printf("-- %s: (", keys[c].c_str());
        for (std::size_t i = 0; i < combos[c].size(); i++)
            std::printf("%s%s", i ? ", " : "", combos[c][i].c_str());
        std::printf(")\n");

        Table t({"Budget", "ChipWideDVFS", "Static", "MaxBIPS",
                 "Oracle"});
        for (std::size_t b = 0; b < budgets.size(); b++) {
            std::vector<std::string> row{Table::pct(budgets[b], 1)};
            for (std::size_t m = 0; m < methods.size(); m++)
                row.push_back(
                    Table::pct(at(c, m, b).metrics.perfDegradation));
            t.addRow(row);
        }
        t.print();
        bench::maybeCsv("fig" + std::to_string(GPM_FIG_WAYS == 2 ? 8 : GPM_FIG_WAYS == 4 ? 9 : 10) + "_" + keys[c], t);
        std::printf("\n");
    }
    bench::appendSweepJson(std::string("fig") +
                               (GPM_FIG_WAYS == 2       ? "8"
                                    : GPM_FIG_WAYS == 4 ? "9"
                                                        : "10") +
                               "_scaling_curves",
                           spec.size(), threads, 0.0, par_ms);

    std::printf(
        "Expected shape (paper): MaxBIPS ~= Oracle and below both "
        "baselines; heterogeneous mixes (e.g. %s1) gain most from "
        "dynamic management; homogeneous CPU-bound mixes degrade "
        "almost linearly; memory-bound mixes degrade least.\n",
        prefix);
    return 0;
}
