/**
 * @file
 * Reproduces paper Figures 8, 9 and 10: policy curves (ChipWideDVFS,
 * Static, MaxBIPS, Oracle) for every Table 2 benchmark combination
 * at 2-, 4- and 8-way CMP scales. Built as one source compiled into
 * three binaries (GPM_FIG selects 8/9/10).
 */

#include <cstdio>
#include <cstring>

#include "common.hh"
#include "util/table.hh"

#ifndef GPM_FIG_WAYS
#define GPM_FIG_WAYS 4
#endif

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto budgets = bench::standardBudgets();
    const std::vector<std::string> methods{"ChipWideDVFS", "Static",
                                           "MaxBIPS", "Oracle"};

    const char *fig = GPM_FIG_WAYS == 2
        ? "Figure 8 — 2-way CMP power management"
        : GPM_FIG_WAYS == 4 ? "Figure 9 — 4-way CMP power management"
                            : "Figure 10 — 8-way CMP power "
                              "management";
    bench::banner(fig,
                  "Performance degradation vs budget for each "
                  "Table 2 combination.");

    char prefix[8];
    std::snprintf(prefix, sizeof(prefix), "%dway", GPM_FIG_WAYS);

    for (const auto &[key, combo] : benchmarkCombinations()) {
        if (key.rfind(prefix, 0) != 0)
            continue;
        std::printf("-- %s: (", key.c_str());
        for (std::size_t i = 0; i < combo.size(); i++)
            std::printf("%s%s", i ? ", " : "", combo[i].c_str());
        std::printf(")\n");

        Table t({"Budget", "ChipWideDVFS", "Static", "MaxBIPS",
                 "Oracle"});
        for (double b : budgets) {
            std::vector<std::string> row{Table::pct(b, 1)};
            for (const auto &m : methods) {
                PolicyEval ev = m == "Static"
                    ? runner.evaluateStatic(combo, b)
                    : runner.evaluate(combo, m, b);
                row.push_back(
                    Table::pct(ev.metrics.perfDegradation));
            }
            t.addRow(row);
        }
        t.print();
        bench::maybeCsv("fig" + std::to_string(GPM_FIG_WAYS == 2 ? 8 : GPM_FIG_WAYS == 4 ? 9 : 10) + "_" + key, t);
        std::printf("\n");
    }

    std::printf(
        "Expected shape (paper): MaxBIPS ~= Oracle and below both "
        "baselines; heterogeneous mixes (e.g. %s1) gain most from "
        "dynamic management; homogeneous CPU-bound mixes degrade "
        "almost linearly; memory-bound mixes degrade least.\n",
        prefix);
    return 0;
}
