/**
 * @file
 * Reproduces the paper Section 3.1 validation: trace-based CMP
 * analysis vs the cycle-level full-CMP model (shared L2 + bus,
 * multiple clock domains). The paper reports full-CMP powers
 * consistently lower (within ~5%) and performance lower by ~9% on
 * average (up to ~30% for highly memory-bound combinations) due to
 * shared-cache and bus conflicts, with per-benchmark variations much
 * smaller than inter-benchmark differences.
 *
 * Runs at a reduced length scale (the detailed model is ~1000x
 * slower than trace replay); override with GPM_VALIDATION_SCALE.
 */

#include <cstdio>
#include <cstdlib>

#include "common.hh"
#include "fullsim/cmp_system.hh"
#include "sim/cmp_sim.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    double scale = 0.02;
    if (const char *s = std::getenv("GPM_VALIDATION_SCALE"))
        scale = std::atof(s);

    bench::banner("Section 3.1 — trace-based vs full-CMP "
                  "validation",
                  "Per-combination chip power and throughput of the "
                  "fast trace-based tool vs the contention-aware "
                  "full-CMP model (static all-Turbo runs).");

    DvfsTable dvfs = DvfsTable::classic3();
    ProfileLibrary lib(dvfs, scale);
    SimConfig cfg;
    ExperimentRunner runner(lib, dvfs, cfg);

    Table t({"Combination", "trace W", "full W", "dPower",
             "trace BIPS", "full BIPS", "dPerf", "bus q [ns]"});
    RunningStat dp, df;
    double worst_perf = 0.0;
    for (const auto &[key, combo] : benchmarkCombinations()) {
        if (key.rfind("8way", 0) == 0)
            continue; // keep the detailed runs affordable
        const SimResult &tr = runner.reference(combo);

        FullSimConfig fcfg;
        fcfg.lengthScale = scale;
        CmpSystem sys(combo, dvfs, fcfg);
        auto fr = sys.runStatic(
            std::vector<PowerMode>(combo.size(), modes::Turbo));

        double dpow =
            fr.avgCorePowerW() / tr.avgCorePowerW() - 1.0;
        double dperf = fr.chipBips() / tr.chipBips() - 1.0;
        dp.add(dpow);
        df.add(dperf);
        worst_perf = std::min(worst_perf, dperf);
        t.addRow({key, Table::num(tr.avgCorePowerW(), 2),
                  Table::num(fr.avgCorePowerW(), 2),
                  Table::pct(dpow), Table::num(tr.chipBips(), 3),
                  Table::num(fr.chipBips(), 3), Table::pct(dperf),
                  Table::num(fr.avgBusQueueNs, 2)});
    }
    t.print();
    bench::maybeCsv("sec31_validation", t);

    std::printf("\nmean power delta %.1f%% (paper: within 5%%, "
                "consistently lower); mean perf delta %.1f%% "
                "(paper: ~-9%% avg), worst %.1f%% (paper: up to "
                "~-30%% for memory-bound mixes).\n",
                dp.mean() * 100.0, df.mean() * 100.0,
                worst_perf * 100.0);
    return 0;
}
