/**
 * @file
 * Quantifies paper Section 5.5's argument for analytic prediction
 * over its two alternatives: exploration ("for a heavy-handed
 * adaptation like DVFS ... essentially prohibitive. Overheads lead
 * to diminishing returns") and history ("unreliable outcomes, since
 * relying on past history can be misleading with temporally
 * changing application behavior"). All three feed the identical
 * MaxBIPS solver; only the Power/BIPS matrices differ.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto runner = env.runner();
    auto combo = combination("4way1");

    bench::banner("Section 5.5 — predictive vs exploratory vs "
                  "history-based mode knowledge",
                  "Same MaxBIPS solver, three ways of filling the "
                  "Power/BIPS matrices; (ammp, mcf, crafty, art).");

    Table t({"Mode knowledge", "Budget", "Perf degradation",
             "Power/budget", "Overshoots", "Switches"});
    for (const char *policy :
         {"MaxBIPS", "HistoryMaxBIPS", "ExploreMaxBIPS"}) {
        for (double b : {0.775, 0.85, 0.925}) {
            auto ev = runner.evaluate(combo, policy, b);
            t.addRow({policy, Table::pct(b, 1),
                      Table::pct(ev.metrics.perfDegradation),
                      Table::pct(ev.metrics.powerOverBudget),
                      std::to_string(ev.managerStats.overshoots),
                      std::to_string(
                          ev.managerStats.modeSwitches)});
        }
    }
    t.print();

    std::printf(
        "\nExpected shape: analytic prediction wins. Exploration "
        "pays a steep price — every sweep spends whole intervals "
        "at uniform (including slowest) modes plus the transition "
        "stalls to get there. History tracks prediction when "
        "phases are stable but inherits stale entries across phase "
        "changes (more overshoots / worse fit at the same "
        "budget).\n");
    return 0;
}
