/**
 * @file
 * Serving-path throughput benchmark, in two acts.
 *
 * Act 1 — cache hierarchy (N pipelined clients x M scenarios each
 * against an in-process gpmd):
 *
 *   cold         empty memory + empty disk — every scenario computes
 *   warm-memory  same scenarios against the same daemon — memory hits
 *   warm-disk    fresh daemon over the same --cache-dir — disk hits
 *
 * Act 2 — transport scale, comparing the epoll reactor against the
 * old architecture on identical warm-cache work:
 *
 *   tpc-baseline      a minimal thread-per-connection NDJSON server
 *                     (blocking reader thread per socket — the
 *                     pre-reactor design, reproduced here) serving
 *                     GPM_BENCH_TPC_CONNS connections x
 *                     GPM_BENCH_CONN_SCENARIOS pipelined submits
 *   reactor-sustained the real GpmServer reactor serving
 *                     GPM_BENCH_REACTOR_CONNS concurrent pipelined
 *                     connections (default 5000 — 5x the baseline)
 *   reactor-churn     waves of connect / one submit / close against
 *                     the reactor (accept-path + teardown throughput)
 *
 * The transport phases are driven by a single-threaded epoll client
 * (thread-per-connection clients cannot hold 5000 sockets honestly),
 * submitting a fixed 16-scenario warm set so the measurement is the
 * serving path, not the sweep engine. At full scale (reactor conns
 * >= 5000) the run FAILS unless every request succeeded and the
 * reactor's warm scenarios/sec beat the baseline by >= 1.5x; set
 * GPM_BENCH_NO_ENFORCE=1 to record numbers without the gate.
 *
 * Each phase goes to stdout and to BENCH_sweep.json as one NDJSON
 * record:
 *
 *   { "bench": "service_throughput", "phase": ..., "clients": N,
 *     "scenarios": M, "wall_ms": ..., "scenarios_per_sec": ...,
 *     "p50_ms": ..., "p99_ms": ... }
 *
 * Latencies are per-scenario completion times from the moment the
 * client starts sending its pipeline (so the p99 of the cold phase
 * reflects queueing behind the whole batch, by design).
 *
 * Knobs: GPM_BENCH_CLIENTS (default 4), GPM_BENCH_SCENARIOS per
 * client (default 8), GPM_BENCH_TPC_CONNS (default reactor/5),
 * GPM_BENCH_REACTOR_CONNS (default 5000), GPM_BENCH_CONN_SCENARIOS
 * (default 8), GPM_BENCH_CHURN_CONNS (default 2000), plus the usual
 * GPM_SCALE / GPM_PROFILE_CACHE.
 */

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <functional>
#include <mutex>
#include <netinet/in.h>
#include <poll.h>
#include <string>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common.hh"
#include "service/line_scanner.hh"
#include "service/server.hh"
#include "service/service.hh"

namespace
{

using namespace gpm;

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/** Lift the soft fd limit to the hard one: the transport phases
 *  hold (client + server) x conns sockets in one process. */
void
raiseFdLimit()
{
    rlimit rl{};
    if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 &&
        rl.rlim_cur < rl.rlim_max) {
        rl.rlim_cur = rl.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &rl);
    }
    ::getrlimit(RLIMIT_NOFILE, &rl);
    std::printf("fd limit: %llu\n\n",
                static_cast<unsigned long long>(rl.rlim_cur));
}

/** The scenario a given (client, slot) pair submits: one combo, one
 *  policy, a budget unique to the pair so every scenario hashes
 *  differently (all misses when cold). */
std::string
scenarioLine(std::size_t client, std::size_t slot,
             std::size_t perClient)
{
    double budget = 0.60 +
        0.39 *
            static_cast<double>(client * perClient + slot) /
            static_cast<double>(perClient * 64);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":\"c%zu-%zu\",\"verb\":\"submit\","
                  "\"scenario\":{\"combo\":[\"mcf\",\"crafty\"],"
                  "\"policy\":\"MaxBIPS\",\"budget\":%.6f}}\n",
                  client, slot, budget);
    return buf;
}

struct PhaseResult
{
    double wallMs = 0.0;
    std::vector<double> latenciesMs; // one per scenario
    std::size_t failures = 0;
};

/** One client: pipeline all requests, then collect all responses. */
void
runClient(std::uint16_t port, std::size_t client,
          std::size_t perClient, std::vector<double> &latencies,
          std::atomic<std::size_t> &failures)
{
    auto conn = TcpStream::connectTo("127.0.0.1", port);
    if (!conn.ok())
        fatal("client %zu: %s", client, conn.error().c_str());
    TcpStream stream = std::move(conn.value());

    std::string pipeline;
    for (std::size_t k = 0; k < perClient; k++)
        pipeline += scenarioLine(client, k, perClient);

    bench::WallTimer timer;
    if (!stream.writeAll(pipeline))
        fatal("client %zu: send failed", client);
    std::string line;
    for (std::size_t k = 0; k < perClient; k++) {
        if (stream.readLine(line) != TcpStream::ReadStatus::Line)
            fatal("client %zu: connection lost after %zu of %zu "
                  "responses",
                  client, k, perClient);
        latencies.push_back(timer.ms());
        if (line.find("\"ok\":true") == std::string::npos)
            failures++;
    }
}

PhaseResult
runPhase(ScenarioService &svc, std::size_t clients,
         std::size_t perClient)
{
    auto listener = TcpListener::listenOn("127.0.0.1", 0);
    if (!listener.ok())
        fatal("listen: %s", listener.error().c_str());
    GpmServer server(svc, std::move(listener.value()));
    std::thread accept([&] { server.run(); });
    std::uint16_t port = server.port();

    PhaseResult res;
    std::vector<std::vector<double>> lats(clients);
    std::atomic<std::size_t> failures{0};
    bench::WallTimer wall;
    {
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < clients; c++)
            threads.emplace_back(runClient, port, c, perClient,
                                 std::ref(lats[c]),
                                 std::ref(failures));
        for (auto &t : threads)
            t.join();
    }
    res.wallMs = wall.ms();
    res.failures = failures.load();
    for (auto &l : lats)
        res.latenciesMs.insert(res.latenciesMs.end(), l.begin(),
                               l.end());
    std::sort(res.latenciesMs.begin(), res.latenciesMs.end());

    server.requestStop();
    accept.join();
    server.stopAndDrain();
    return res;
}

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/** Print + record one phase; returns its scenarios/sec. */
double
report(const char *phase, std::size_t clients,
       std::size_t perClient, const PhaseResult &res)
{
    double total = static_cast<double>(clients * perClient);
    double perSec =
        res.wallMs > 0.0 ? total / (res.wallMs / 1000.0) : 0.0;
    double p50 = percentile(res.latenciesMs, 0.50);
    double p99 = percentile(res.latenciesMs, 0.99);
    std::printf("%-18s %7.0f scen/s  p50 %8.1f ms  p99 %8.1f ms  "
                "wall %8.1f ms%s\n",
                phase, perSec, p50, p99, res.wallMs,
                res.failures ? "  [FAILURES]" : "");
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{ \"bench\": \"service_throughput\", \"phase\": \"%s\", "
        "\"clients\": %zu, \"scenarios\": %zu, \"wall_ms\": %.1f, "
        "\"scenarios_per_sec\": %.1f, \"p50_ms\": %.1f, "
        "\"p99_ms\": %.1f }",
        phase, clients, perClient, res.wallMs, perSec, p50, p99);
    bench::appendBenchLine(buf);
    return perSec;
}

/** Fresh scratch directory for the disk tier. */
std::string
makeCacheDir()
{
    char tmpl[] = "/tmp/gpm_bench_cache_XXXXXX";
    if (!::mkdtemp(tmpl))
        fatal("mkdtemp failed");
    return tmpl;
}

void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

// ===============================================================
// Act 2: transport scale
// ===============================================================

constexpr std::size_t kWarmSet = 16;

/** One of the fixed warm-set scenarios (16 distinct budgets). */
std::string
warmScenarioJson(std::size_t v)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"combo\":[\"mcf\",\"crafty\"],"
                  "\"policy\":\"MaxBIPS\",\"budget\":%.6f}",
                  0.60 + 0.02 * static_cast<double>(v % kWarmSet));
    return buf;
}

std::string
warmSubmitLine(std::size_t conn, std::size_t k)
{
    return "{\"id\":\"s" + std::to_string(conn) + "-" +
        std::to_string(k) + "\",\"verb\":\"submit\","
        "\"scenario\":" + warmScenarioJson(conn + k) + "}\n";
}

/** Compute the warm set once so the transport phases are pure
 *  cache hits (the measurement is the serving path). */
void
warmScenarios(ScenarioService &svc)
{
    std::atomic<std::size_t> done{0};
    for (std::size_t v = 0; v < kWarmSet; v++) {
        auto parsed = json::parse(warmScenarioJson(v));
        auto spec = parseScenario(parsed.value());
        if (!spec.ok())
            fatal("warm scenario %zu: %s", v,
                  spec.error().c_str());
        svc.submitAsync(
            spec.value(),
            [&done](ScenarioService::Response &&) { done++; }, 0);
    }
    while (done.load() < kWarmSet)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

/**
 * The pre-reactor architecture, reproduced: a blocking accept loop
 * that spawns one reader thread per connection, each with a
 * buffered rdbuf readLine and mutex-serialized blocking writes.
 * Serves the same ScenarioService so tpc-baseline and
 * reactor-sustained differ only in transport.
 */
class TpcServer
{
  public:
    TpcServer(ScenarioService &svc_, TcpListener listener_)
        : svc(svc_), listener(std::move(listener_))
    {
        acceptThr = std::thread([this] { acceptLoop(); });
    }

    ~TpcServer() { stop(); }

    std::uint16_t port() const { return listener.port(); }

    void
    stop()
    {
        listener.shutdownListener();
        if (acceptThr.joinable())
            acceptThr.join();
        {
            std::lock_guard<std::mutex> lock(mtx);
            for (auto &c : conns)
                if (c)
                    c->stream.shutdownBoth();
        }
        for (auto &t : threads)
            if (t.joinable())
                t.join();
        listener.close();
    }

  private:
    struct Conn
    {
        explicit Conn(int fd) : stream(fd) {}
        TcpStream stream;
        std::mutex writeMtx;
        std::mutex pendMtx;
        std::condition_variable cv;
        std::size_t pending = 0;
    };

    void
    acceptLoop()
    {
        for (;;) {
            int fd = listener.acceptFd();
            if (fd < 0)
                return;
            auto conn = std::make_shared<Conn>(fd);
            std::lock_guard<std::mutex> lock(mtx);
            std::uint64_t clientId = ++accepted;
            conns.push_back(conn);
            threads.emplace_back(&TpcServer::serve, this,
                                 std::move(conn), clientId);
        }
    }

    void
    serve(std::shared_ptr<Conn> conn, std::uint64_t clientId)
    {
        std::string line;
        while (conn->stream.readLine(line) ==
               TcpStream::ReadStatus::Line) {
            auto parsed = json::parse(line);
            if (!parsed.ok() || !parsed.value().isObject())
                continue;
            const json::Value *id = parsed.value().find("id");
            const json::Value *scen =
                parsed.value().find("scenario");
            if (!id || !scen)
                continue;
            auto spec = parseScenario(*scen);
            if (!spec.ok())
                continue;
            {
                std::lock_guard<std::mutex> lock(conn->pendMtx);
                conn->pending++;
            }
            std::string idTxt = id->dump();
            svc.submitAsync(
                spec.value(),
                [conn, idTxt](ScenarioService::Response &&r) {
                    std::string out = "{\"id\":" + idTxt +
                        ",\"ok\":" + (r.ok ? "true" : "false");
                    if (r.ok) {
                        out += ",\"cached\":";
                        out += r.cacheHit ? "true" : "false";
                        out += ",\"result\":" + r.payload;
                    }
                    out += "}\n";
                    {
                        std::lock_guard<std::mutex> lock(
                            conn->writeMtx);
                        conn->stream.writeAll(out);
                    }
                    {
                        std::lock_guard<std::mutex> lock(
                            conn->pendMtx);
                        conn->pending--;
                    }
                    conn->cv.notify_all();
                },
                clientId);
        }
        std::unique_lock<std::mutex> lock(conn->pendMtx);
        conn->cv.wait(lock, [&] { return conn->pending == 0; });
    }

    ScenarioService &svc;
    TcpListener listener;
    std::thread acceptThr;
    std::mutex mtx;
    std::uint64_t accepted = 0;
    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<std::thread> threads;
};

/**
 * Single-threaded epoll client driver: holds nConns sockets at
 * once, pipelines each connection's payload, frames responses with
 * the same LineScanner the server uses, and records one latency
 * per response (phase-relative, like runClient). A client that
 * cannot scale past its own thread count would make the 5000-conn
 * claim meaningless — this one is O(1) threads.
 */
PhaseResult
driveConns(std::uint16_t port, std::size_t nConns,
           std::size_t perConn,
           const std::function<std::string(std::size_t)> &payload)
{
    struct CConn
    {
        int fd = -1;
        std::string sendBuf;
        std::size_t sendOff = 0;
        LineScanner in;
        std::size_t expect = 0;
        std::size_t got = 0;
        bool done = false;
    };

    PhaseResult res;
    std::vector<CConn> conns(nConns);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

    // Connect in paced waves so the SYN backlog is never the thing
    // being measured (somaxconn bounds it system-wide).
    const std::size_t kWave = 512;
    for (std::size_t w = 0; w < nConns; w += kWave) {
        std::size_t end = std::min(nConns, w + kWave);
        for (std::size_t i = w; i < end; i++) {
            int fd = ::socket(AF_INET,
                              SOCK_STREAM | SOCK_NONBLOCK |
                                  SOCK_CLOEXEC,
                              0);
            if (fd < 0)
                fatal("bench client: socket: %s",
                      std::strerror(errno));
            if (::connect(fd,
                          reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) != 0 &&
                errno != EINPROGRESS)
                fatal("bench client: connect (conn %zu): %s", i,
                      std::strerror(errno));
            conns[i].fd = fd;
        }
        for (std::size_t i = w; i < end; i++) {
            pollfd p{conns[i].fd, POLLOUT, 0};
            if (::poll(&p, 1, 30000) != 1)
                fatal("bench client: connect timeout (conn %zu)",
                      i);
            int err = 0;
            socklen_t el = sizeof(err);
            ::getsockopt(conns[i].fd, SOL_SOCKET, SO_ERROR, &err,
                         &el);
            if (err != 0)
                fatal("bench client: connect (conn %zu): %s", i,
                      std::strerror(err));
        }
    }

    int ep = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep < 0)
        fatal("bench client: epoll_create1: %s",
              std::strerror(errno));
    for (std::size_t i = 0; i < nConns; i++) {
        conns[i].sendBuf = payload(i);
        conns[i].expect = perConn;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = i;
        ::epoll_ctl(ep, EPOLL_CTL_ADD, conns[i].fd, &ev);
    }

    std::size_t remaining = nConns;
    bench::WallTimer timer;

    auto finish = [&](CConn &c) {
        ::epoll_ctl(ep, EPOLL_CTL_DEL, c.fd, nullptr);
        ::close(c.fd);
        c.fd = -1;
        c.done = true;
        remaining--;
    };
    // Returns false when the connection broke mid-send.
    auto tryWrite = [&](CConn &c, std::size_t idx) {
        while (c.sendOff < c.sendBuf.size()) {
            ssize_t n = ::send(c.fd, c.sendBuf.data() + c.sendOff,
                               c.sendBuf.size() - c.sendOff,
                               MSG_NOSIGNAL);
            if (n > 0) {
                c.sendOff += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK)) {
                epoll_event ev{};
                ev.events = EPOLLIN | EPOLLOUT;
                ev.data.u64 = idx;
                ::epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev);
                return true;
            }
            return false;
        }
        return true;
    };

    for (std::size_t i = 0; i < nConns; i++)
        if (!tryWrite(conns[i], i)) {
            res.failures += conns[i].expect;
            finish(conns[i]);
        }

    epoll_event evs[256];
    while (remaining > 0) {
        int n = ::epoll_wait(ep, evs, 256, 60000);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("bench client: epoll_wait: %s",
                  std::strerror(errno));
        }
        if (n == 0)
            fatal("bench client: stalled with %zu connections "
                  "unanswered",
                  remaining);
        for (int e = 0; e < n; e++) {
            std::size_t idx =
                static_cast<std::size_t>(evs[e].data.u64);
            CConn &c = conns[idx];
            if (c.done)
                continue;
            if (evs[e].events & EPOLLOUT) {
                if (!tryWrite(c, idx)) {
                    res.failures += c.expect - c.got;
                    finish(c);
                    continue;
                }
                if (c.sendOff == c.sendBuf.size()) {
                    epoll_event ev{};
                    ev.events = EPOLLIN;
                    ev.data.u64 = idx;
                    ::epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev);
                }
            }
            if (!(evs[e].events &
                  (EPOLLIN | EPOLLHUP | EPOLLERR)))
                continue;
            for (;;) {
                char *p = c.in.writePtr(4096);
                ssize_t r =
                    ::recv(c.fd, p, c.in.writeCapacity(), 0);
                if (r > 0) {
                    c.in.commit(static_cast<std::size_t>(r));
                    std::string_view line;
                    while (c.in.next(line, 1 << 20) ==
                           LineScanner::Scan::Line) {
                        c.got++;
                        res.latenciesMs.push_back(timer.ms());
                        if (line.find("\"ok\":true") ==
                            std::string_view::npos)
                            res.failures++;
                    }
                    if (c.got >= c.expect) {
                        finish(c);
                        break;
                    }
                    continue;
                }
                if (r < 0 && errno == EINTR)
                    continue;
                if (r < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK))
                    break;
                // EOF or error before the full response set.
                res.failures += c.expect - c.got;
                finish(c);
                break;
            }
        }
    }
    res.wallMs = timer.ms();
    ::close(ep);
    std::sort(res.latenciesMs.begin(), res.latenciesMs.end());
    return res;
}

std::function<std::string(std::size_t)>
sustainedPayload(std::size_t perConn)
{
    return [perConn](std::size_t conn) {
        std::string p;
        for (std::size_t k = 0; k < perConn; k++)
            p += warmSubmitLine(conn, k);
        return p;
    };
}

/** Connect / one submit / close, in waves: accept-path churn. */
PhaseResult
driveChurn(std::uint16_t port, std::size_t totalConns,
           std::size_t waveSize)
{
    PhaseResult res;
    bench::WallTimer wall;
    std::size_t launched = 0;
    while (launched < totalConns) {
        std::size_t wave =
            std::min(waveSize, totalConns - launched);
        std::size_t base = launched;
        PhaseResult w = driveConns(
            port, wave, 1, [base](std::size_t conn) {
                return warmSubmitLine(base + conn, 0);
            });
        res.failures += w.failures;
        res.latenciesMs.insert(res.latenciesMs.end(),
                               w.latenciesMs.begin(),
                               w.latenciesMs.end());
        launched += wave;
    }
    res.wallMs = wall.ms();
    std::sort(res.latenciesMs.begin(), res.latenciesMs.end());
    return res;
}

} // namespace

int
main()
{
    std::size_t clients = envSize("GPM_BENCH_CLIENTS", 4);
    std::size_t perClient = envSize("GPM_BENCH_SCENARIOS", 8);
    std::size_t reactorConns =
        envSize("GPM_BENCH_REACTOR_CONNS", 5000);
    std::size_t tpcConns = envSize(
        "GPM_BENCH_TPC_CONNS",
        reactorConns >= 5 ? reactorConns / 5 : 1);
    std::size_t connScenarios =
        envSize("GPM_BENCH_CONN_SCENARIOS", 8);
    std::size_t churnConns =
        envSize("GPM_BENCH_CHURN_CONNS", 2000);

    bench::banner("Serving-path throughput",
                  "pipelined clients against an in-process gpmd: "
                  "cache hierarchy, then transport scale");
    std::printf("%zu clients x %zu scenarios each\n", clients,
                perClient);
    raiseFdLimit();

    bench::Env env;
    std::string cacheDir = makeCacheDir();

    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = clients * perClient + 8;
    opts.sweepConcurrency = 1;
    opts.cacheDir = cacheDir;

    {
        ScenarioService svc(env.lib, env.dvfs, opts);
        report("cold", clients, perClient,
               runPhase(svc, clients, perClient));
        report("warm-memory", clients, perClient,
               runPhase(svc, clients, perClient));
        svc.drain();
    }
    {
        // Fresh daemon over the same cache directory: memory tier
        // empty, disk tier warm.
        ScenarioService svc(env.lib, env.dvfs, opts);
        report("warm-disk", clients, perClient,
               runPhase(svc, clients, perClient));
        ServiceStats s = svc.stats();
        std::printf("\nwarm-disk daemon: diskHits=%llu "
                    "cacheMisses=%llu\n",
                    static_cast<unsigned long long>(s.diskHits),
                    static_cast<unsigned long long>(s.cacheMisses));
        svc.drain();
    }
    removeTree(cacheDir);

    // ---- Act 2: transport scale ----
    std::printf("\ntransport: %zu tpc conns vs %zu reactor conns "
                "x %zu submits, %zu churn conns\n",
                tpcConns, reactorConns, connScenarios, churnConns);

    ServiceOptions topts;
    topts.workers = 2;
    topts.queueCapacity = 64;
    topts.sweepConcurrency = 1;
    ScenarioService tsvc(env.lib, env.dvfs, topts);
    warmScenarios(tsvc);

    double tpcPerSec = 0.0, reactorPerSec = 0.0;
    std::size_t transportFailures = 0;

    {
        auto listener =
            TcpListener::listenOn("127.0.0.1", 0, 4096);
        if (!listener.ok())
            fatal("listen: %s", listener.error().c_str());
        TpcServer server(tsvc, std::move(listener.value()));
        PhaseResult r = driveConns(server.port(), tpcConns,
                                   connScenarios,
                                   sustainedPayload(connScenarios));
        tpcPerSec =
            report("tpc-baseline", tpcConns, connScenarios, r);
        transportFailures += r.failures;
        server.stop();
    }
    {
        auto listener =
            TcpListener::listenOn("127.0.0.1", 0, 4096);
        if (!listener.ok())
            fatal("listen: %s", listener.error().c_str());
        GpmServer server(tsvc, std::move(listener.value()));
        std::thread accept([&] { server.run(); });
        PhaseResult r = driveConns(server.port(), reactorConns,
                                   connScenarios,
                                   sustainedPayload(connScenarios));
        reactorPerSec = report("reactor-sustained", reactorConns,
                               connScenarios, r);
        transportFailures += r.failures;

        PhaseResult ch =
            driveChurn(server.port(), churnConns, 500);
        report("reactor-churn", churnConns, 1, ch);
        transportFailures += ch.failures;

        server.requestStop();
        accept.join();
        server.stopAndDrain();
    }

    double ratio =
        tpcPerSec > 0.0 ? reactorPerSec / tpcPerSec : 0.0;
    std::printf("\nreactor vs thread-per-connection: %.0fx "
                "connections, %.2fx warm scenarios/sec\n",
                tpcConns ? static_cast<double>(reactorConns) /
                        static_cast<double>(tpcConns)
                         : 0.0,
                ratio);

    const char *noEnforce = std::getenv("GPM_BENCH_NO_ENFORCE");
    bool enforce = !(noEnforce && *noEnforce == '1');
    if (enforce && transportFailures > 0)
        fatal("transport phases saw %zu request errors",
              transportFailures);
    if (enforce && reactorConns >= 5000 && ratio < 1.5)
        fatal("reactor warm throughput only %.2fx the "
              "thread-per-connection baseline (need >= 1.5x)",
              ratio);
    return 0;
}
