/**
 * @file
 * Serving-path throughput benchmark: N pipelined clients x M
 * scenarios each against an in-process gpmd (ScenarioService +
 * GpmServer over loopback), measured three times over the cache
 * hierarchy:
 *
 *   cold         empty memory + empty disk — every scenario computes
 *   warm-memory  same scenarios against the same daemon — memory hits
 *   warm-disk    fresh daemon over the same --cache-dir — disk hits
 *
 * Each client writes all of its submit requests back-to-back
 * (pipelining) and then collects the responses, so the run exercises
 * the writer queue and out-of-order completion, not just the sweep
 * engine. Per-phase results go to stdout and to BENCH_sweep.json as
 * one NDJSON record:
 *
 *   { "bench": "service_throughput", "phase": ..., "clients": N,
 *     "scenarios": M, "wall_ms": ..., "scenarios_per_sec": ...,
 *     "p50_ms": ..., "p99_ms": ... }
 *
 * Latencies are per-scenario completion times from the moment the
 * client starts sending its pipeline (so the p99 of the cold phase
 * reflects queueing behind the whole batch, by design).
 *
 * Knobs: GPM_BENCH_CLIENTS (default 4), GPM_BENCH_SCENARIOS per
 * client (default 8), plus the usual GPM_SCALE / GPM_PROFILE_CACHE.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <dirent.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common.hh"
#include "service/server.hh"
#include "service/service.hh"

namespace
{

using namespace gpm;

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    long v = std::atol(s);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/** The scenario a given (client, slot) pair submits: one combo, one
 *  policy, a budget unique to the pair so every scenario hashes
 *  differently (all misses when cold). */
std::string
scenarioLine(std::size_t client, std::size_t slot,
             std::size_t perClient)
{
    double budget = 0.60 +
        0.39 *
            static_cast<double>(client * perClient + slot) /
            static_cast<double>(perClient * 64);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":\"c%zu-%zu\",\"verb\":\"submit\","
                  "\"scenario\":{\"combo\":[\"mcf\",\"crafty\"],"
                  "\"policy\":\"MaxBIPS\",\"budget\":%.6f}}\n",
                  client, slot, budget);
    return buf;
}

struct PhaseResult
{
    double wallMs = 0.0;
    std::vector<double> latenciesMs; // one per scenario
    std::size_t failures = 0;
};

/** One client: pipeline all requests, then collect all responses. */
void
runClient(std::uint16_t port, std::size_t client,
          std::size_t perClient, std::vector<double> &latencies,
          std::atomic<std::size_t> &failures)
{
    auto conn = TcpStream::connectTo("127.0.0.1", port);
    if (!conn.ok())
        fatal("client %zu: %s", client, conn.error().c_str());
    TcpStream stream = std::move(conn.value());

    std::string pipeline;
    for (std::size_t k = 0; k < perClient; k++)
        pipeline += scenarioLine(client, k, perClient);

    bench::WallTimer timer;
    if (!stream.writeAll(pipeline))
        fatal("client %zu: send failed", client);
    std::string line;
    for (std::size_t k = 0; k < perClient; k++) {
        if (stream.readLine(line) != TcpStream::ReadStatus::Line)
            fatal("client %zu: connection lost after %zu of %zu "
                  "responses",
                  client, k, perClient);
        latencies.push_back(timer.ms());
        if (line.find("\"ok\":true") == std::string::npos)
            failures++;
    }
}

PhaseResult
runPhase(ScenarioService &svc, std::size_t clients,
         std::size_t perClient)
{
    auto listener = TcpListener::listenOn("127.0.0.1", 0);
    if (!listener.ok())
        fatal("listen: %s", listener.error().c_str());
    GpmServer server(svc, std::move(listener.value()));
    std::thread accept([&] { server.run(); });
    std::uint16_t port = server.port();

    PhaseResult res;
    std::vector<std::vector<double>> lats(clients);
    std::atomic<std::size_t> failures{0};
    bench::WallTimer wall;
    {
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < clients; c++)
            threads.emplace_back(runClient, port, c, perClient,
                                 std::ref(lats[c]),
                                 std::ref(failures));
        for (auto &t : threads)
            t.join();
    }
    res.wallMs = wall.ms();
    res.failures = failures.load();
    for (auto &l : lats)
        res.latenciesMs.insert(res.latenciesMs.end(), l.begin(),
                               l.end());
    std::sort(res.latenciesMs.begin(), res.latenciesMs.end());

    server.requestStop();
    accept.join();
    server.stopAndDrain();
    return res;
}

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

void
report(const char *phase, std::size_t clients,
       std::size_t perClient, const PhaseResult &res)
{
    double total = static_cast<double>(clients * perClient);
    double perSec =
        res.wallMs > 0.0 ? total / (res.wallMs / 1000.0) : 0.0;
    double p50 = percentile(res.latenciesMs, 0.50);
    double p99 = percentile(res.latenciesMs, 0.99);
    std::printf("%-12s %5.0f scen/s  p50 %8.1f ms  p99 %8.1f ms  "
                "wall %8.1f ms%s\n",
                phase, perSec, p50, p99, res.wallMs,
                res.failures ? "  [FAILURES]" : "");
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{ \"bench\": \"service_throughput\", \"phase\": \"%s\", "
        "\"clients\": %zu, \"scenarios\": %zu, \"wall_ms\": %.1f, "
        "\"scenarios_per_sec\": %.1f, \"p50_ms\": %.1f, "
        "\"p99_ms\": %.1f }",
        phase, clients, perClient, res.wallMs, perSec, p50, p99);
    bench::appendBenchLine(buf);
}

/** Fresh scratch directory for the disk tier. */
std::string
makeCacheDir()
{
    char tmpl[] = "/tmp/gpm_bench_cache_XXXXXX";
    if (!::mkdtemp(tmpl))
        fatal("mkdtemp failed");
    return tmpl;
}

void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

} // namespace

int
main()
{
    std::size_t clients = envSize("GPM_BENCH_CLIENTS", 4);
    std::size_t perClient = envSize("GPM_BENCH_SCENARIOS", 8);

    bench::banner("Serving-path throughput",
                  "pipelined clients against an in-process gpmd, "
                  "cold / warm-memory / warm-disk");
    std::printf("%zu clients x %zu scenarios each\n\n", clients,
                perClient);

    bench::Env env;
    std::string cacheDir = makeCacheDir();

    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = clients * perClient + 8;
    opts.sweepConcurrency = 1;
    opts.cacheDir = cacheDir;

    {
        ScenarioService svc(env.lib, env.dvfs, opts);
        report("cold", clients, perClient,
               runPhase(svc, clients, perClient));
        report("warm-memory", clients, perClient,
               runPhase(svc, clients, perClient));
        svc.drain();
    }
    {
        // Fresh daemon over the same cache directory: memory tier
        // empty, disk tier warm.
        ScenarioService svc(env.lib, env.dvfs, opts);
        report("warm-disk", clients, perClient,
               runPhase(svc, clients, perClient));
        ServiceStats s = svc.stats();
        std::printf("\nwarm-disk daemon: diskHits=%llu "
                    "cacheMisses=%llu\n",
                    static_cast<unsigned long long>(s.diskHits),
                    static_cast<unsigned long long>(s.cacheMisses));
        svc.drain();
    }

    removeTree(cacheDir);
    return 0;
}
