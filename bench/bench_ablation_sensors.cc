/**
 * @file
 * Ablation: controller robustness to sensor error. The global
 * manager's budget guarantee rests on per-core current sensors
 * (Section 2 cites the Foxton controller); real sensors carry a few
 * percent of error. This bench sweeps the relative sensor noise and
 * reports how MaxBIPS's budget adherence and performance degrade —
 * quantifying how much sensor quality the architecture needs.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto combo = combination("4way1");

    bench::banner("Ablation — sensor-noise robustness",
                  "MaxBIPS @ 80% budget on (ammp, mcf, crafty, "
                  "art) with noisy local power/BIPS monitors.");

    Table t({"Sensor noise (1-sigma)", "Perf degradation",
             "Power/budget", "Overshoot intervals",
             "Mode switches"});
    for (double noise : {0.0, 0.01, 0.02, 0.05, 0.10}) {
        SimConfig cfg;
        cfg.sensorNoise = noise;
        ExperimentRunner runner(env.lib, env.dvfs, cfg);
        auto ev = runner.evaluate(combo, "MaxBIPS", 0.8);
        t.addRow({Table::pct(noise, 0),
                  Table::pct(ev.metrics.perfDegradation),
                  Table::pct(ev.metrics.powerOverBudget),
                  std::to_string(ev.managerStats.overshoots),
                  std::to_string(ev.managerStats.modeSwitches)});
    }
    t.print();

    std::printf("\nExpected shape: a few percent of sensor noise "
                "mainly causes spurious mode switches and "
                "occasional overshoots (corrected next interval); "
                "budget adherence erodes gracefully, which is why "
                "the paper's design tolerates realistic sensors.\n");
    return 0;
}
