/**
 * @file
 * Ablation: controller robustness to sensor error. The global
 * manager's budget guarantee rests on per-core current sensors
 * (Section 2 cites the Foxton controller); real sensors carry a few
 * percent of error. This bench sweeps the relative sensor noise and
 * reports how MaxBIPS's budget adherence and performance degrade —
 * quantifying how much sensor quality the architecture needs. Each
 * noise level needs its own SimConfig (hence its own runner), so the
 * levels fan out through parallelFor rather than one sweep call.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    bench::Env env;
    auto combo = combination("4way1");

    bench::banner("Ablation — sensor-noise robustness",
                  "MaxBIPS @ 80% budget on (ammp, mcf, crafty, "
                  "art) with noisy local power/BIPS monitors.");

    const std::vector<double> noises{0.0, 0.01, 0.02, 0.05, 0.10};
    std::vector<PolicyEval> evals(noises.size());

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, noises.size(), [&](std::size_t i) {
        SimConfig cfg;
        cfg.sensorNoise = noises[i];
        ExperimentRunner runner(env.lib, env.dvfs, cfg);
        evals[i] = runner.evaluate(combo, "MaxBIPS", 0.8);
    });
    double par_ms = timer.ms();

    Table t({"Sensor noise (1-sigma)", "Perf degradation",
             "Power/budget", "Overshoot intervals",
             "Mode switches"});
    for (std::size_t i = 0; i < noises.size(); i++) {
        const auto &ev = evals[i];
        t.addRow({Table::pct(noises[i], 0),
                  Table::pct(ev.metrics.perfDegradation),
                  Table::pct(ev.metrics.powerOverBudget),
                  std::to_string(ev.managerStats.overshoots),
                  std::to_string(ev.managerStats.modeSwitches)});
    }
    t.print();
    bench::appendSweepJson("ablation_sensors", noises.size(),
                           threads, 0.0, par_ms);

    std::printf("\nExpected shape: a few percent of sensor noise "
                "mainly causes spurious mode switches and "
                "occasional overshoots (corrected next interval); "
                "budget adherence erodes gracefully, which is why "
                "the paper's design tolerates realistic sensors.\n");
    return 0;
}
