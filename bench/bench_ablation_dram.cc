/**
 * @file
 * Ablation: memory-model fidelity in the full-CMP configuration.
 * Table 1 models memory as a flat 77-cycle latency; real DRAM has
 * banks and row buffers, so co-runners close each other's rows and
 * queue on banks. This bench reruns the Section 3.1-style full-CMP
 * measurements with banked DRAM to show how much the flat-latency
 * simplification hides, and that it does not change who wins. The
 * eight full-CMP simulations (4 combinations x flat/banked) are
 * independent CmpSystem instances, so they fan out one per pool
 * slot.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.hh"
#include "fullsim/cmp_system.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    double scale = 0.02;
    if (const char *s = std::getenv("GPM_VALIDATION_SCALE"))
        scale = std::atof(s);

    bench::banner("Ablation — flat memory vs banked open-row DRAM "
                  "(full-CMP)",
                  "All-Turbo runs; row-buffer behaviour and bank "
                  "queueing vs the Table 1 flat 77 ns.");

    DvfsTable dvfs = DvfsTable::classic3();
    const std::vector<const char *> keys{"2way2", "2way4", "4way1",
                                         "4way3"};

    struct Result
    {
        double flatBips = 0.0;
        double dramBips = 0.0;
        double rowHitRate = 0.0;
        double busQueueNs = 0.0;
    };
    std::vector<Result> results(keys.size());

    // 2 * keys.size() independent simulations: even index = flat,
    // odd = banked DRAM for the same combination.
    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, keys.size() * 2, [&](std::size_t i) {
        const auto &combo = combination(keys[i / 2]);
        FullSimConfig cfg;
        cfg.lengthScale = scale;
        cfg.useDram = i % 2 == 1;
        CmpSystem sys(combo, dvfs, cfg);
        auto r = sys.runStatic(
            std::vector<PowerMode>(combo.size(), modes::Turbo));
        Result &out = results[i / 2];
        if (cfg.useDram) {
            out.dramBips = r.chipBips();
            out.rowHitRate = sys.sharedL2().dram()->rowHitRate();
            out.busQueueNs = r.avgBusQueueNs;
        } else {
            out.flatBips = r.chipBips();
        }
    });
    double par_ms = timer.ms();

    Table t({"Combination", "flat BIPS", "DRAM BIPS", "delta",
             "row-hit rate", "bank+bus q [ns]"});
    for (std::size_t i = 0; i < keys.size(); i++) {
        const Result &r = results[i];
        t.addRow({keys[i], Table::num(r.flatBips, 3),
                  Table::num(r.dramBips, 3),
                  Table::pct(r.dramBips / r.flatBips - 1.0),
                  Table::pct(r.rowHitRate),
                  Table::num(r.busQueueNs, 1)});
    }
    t.print();
    bench::maybeCsv("ablation_dram", t);
    bench::appendSweepJson("ablation_dram", keys.size() * 2, threads,
                           0.0, par_ms);

    std::printf("\nExpected shape: compute-bound mixes barely "
                "notice; memory-bound mixes slow several percent "
                "more than under flat memory (random pointer "
                "chases mostly miss row buffers at 95 ns vs 77 ns "
                "flat, and hot banks queue), while streaming "
                "workloads claw some back through row-buffer "
                "hits.\n");
    return 0;
}
