/**
 * @file
 * Ablation: memory-model fidelity in the full-CMP configuration.
 * Table 1 models memory as a flat 77-cycle latency; real DRAM has
 * banks and row buffers, so co-runners close each other's rows and
 * queue on banks. This bench reruns the Section 3.1-style full-CMP
 * measurements with banked DRAM to show how much the flat-latency
 * simplification hides, and that it does not change who wins.
 */

#include <cstdio>
#include <cstdlib>

#include "common.hh"
#include "fullsim/cmp_system.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    double scale = 0.02;
    if (const char *s = std::getenv("GPM_VALIDATION_SCALE"))
        scale = std::atof(s);

    bench::banner("Ablation — flat memory vs banked open-row DRAM "
                  "(full-CMP)",
                  "All-Turbo runs; row-buffer behaviour and bank "
                  "queueing vs the Table 1 flat 77 ns.");

    DvfsTable dvfs = DvfsTable::classic3();
    Table t({"Combination", "flat BIPS", "DRAM BIPS", "delta",
             "row-hit rate", "bank+bus q [ns]"});
    for (const char *key : {"2way2", "2way4", "4way1", "4way3"}) {
        const auto &combo = combination(key);
        FullSimConfig flat;
        flat.lengthScale = scale;
        FullSimConfig banked = flat;
        banked.useDram = true;

        CmpSystem a(combo, dvfs, flat);
        CmpSystem b(combo, dvfs, banked);
        auto ra = a.runStatic(
            std::vector<PowerMode>(combo.size(), modes::Turbo));
        auto rb = b.runStatic(
            std::vector<PowerMode>(combo.size(), modes::Turbo));
        t.addRow({key, Table::num(ra.chipBips(), 3),
                  Table::num(rb.chipBips(), 3),
                  Table::pct(rb.chipBips() / ra.chipBips() - 1.0),
                  Table::pct(b.sharedL2().dram()->rowHitRate()),
                  Table::num(rb.avgBusQueueNs, 1)});
    }
    t.print();
    bench::maybeCsv("ablation_dram", t);

    std::printf("\nExpected shape: compute-bound mixes barely "
                "notice; memory-bound mixes slow several percent "
                "more than under flat memory (random pointer "
                "chases mostly miss row buffers at 95 ns vs 77 ns "
                "flat, and hot banks queue), while streaming "
                "workloads claw some back through row-buffer "
                "hits.\n");
    return 0;
}
