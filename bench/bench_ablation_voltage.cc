/**
 * @file
 * Ablation (paper Section 4): sensitivity to the voltage-frequency
 * scaling assumption. The paper's linear V-f scaling is optimistic
 * for emerging low-Vdd generations where voltage has less headroom;
 * with sub-linear voltage scaling, per-mode power savings shrink
 * (Eff2 saves ~27% instead of ~39%), the all-Eff2 power floor rises,
 * and low budgets become unreachable — quantifying how much of the
 * paper's benefit depends on the cubic-power assumption. The two
 * scenarios (own DVFS table, own profile cache) run on separate
 * threads; the budget sweep inside each goes through the sweep
 * engine.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpm;
    double scale = 0.1;
    if (const char *s = std::getenv("GPM_ABLATION_SCALE"))
        scale = std::atof(s);

    bench::banner("Ablation — voltage-scaling assumption",
                  "MaxBIPS under linear (paper) vs sub-linear "
                  "voltage scaling, (ammp, mcf, crafty, art).");

    auto combo = combination("4way1");
    auto budgets = bench::standardBudgets();
    struct Scenario
    {
        const char *name;
        DvfsTable dvfs;
        const char *cache;
        std::vector<PolicyEval> evals;
    };
    std::vector<Scenario> scenarios;
    scenarios.push_back({"linear V-f (paper)", DvfsTable::classic3(),
                         "gpm_profiles_vlin_s%g.bin", {}});
    scenarios.push_back({"sub-linear voltage",
                         DvfsTable::subLinearVoltage(),
                         "gpm_profiles_vsub_s%g.bin", {}});

    std::size_t threads = defaultConcurrency();
    bench::WallTimer timer;
    parallelFor(threads, scenarios.size(), [&](std::size_t i) {
        auto &sc = scenarios[i];
        ProfileLibrary lib(sc.dvfs, scale);
        char path[128];
        std::snprintf(path, sizeof(path), sc.cache, scale);
        lib.loadOrBuild(path);
        ExperimentRunner runner(lib, sc.dvfs);
        SweepSpec spec;
        spec.addGrid({combo}, {"MaxBIPS"}, budgets);
        // Nested parallelFor runs inline on a pool worker, so this
        // stays one simulation at a time per scenario thread.
        sc.evals = bench::sweepChecked(runner, spec, threads);
    });
    double par_ms = timer.ms();

    for (const auto &sc : scenarios) {
        std::printf("-- %s (Eff2 ideal savings %.1f%%)\n", sc.name,
                    (1.0 -
                     sc.dvfs.powerScale(modes::Eff2)) *
                        100.0);
        Table t({"Budget", "Perf degradation", "Power/budget",
                 "Power savings"});
        for (std::size_t b = 0; b < budgets.size(); b++) {
            const auto &ev = sc.evals[b];
            t.addRow({Table::pct(budgets[b], 1),
                      Table::pct(ev.metrics.perfDegradation),
                      Table::pct(ev.metrics.powerOverBudget),
                      Table::pct(ev.metrics.powerSavings)});
        }
        t.print();
        std::printf("\n");
    }
    bench::appendSweepJson("ablation_voltage",
                           scenarios.size() * budgets.size(), threads,
                           0.0, par_ms);

    std::printf("Expected shape: with sub-linear voltage the same "
                "frequency cut buys less power, so the budget "
                "floor rises (~73%% vs ~62%%) and low budgets show "
                "power/budget > 100%% — the DVFS knob loses "
                "leverage exactly as the paper's 'optimistic "
                "bound' caveat warns.\n");
    return 0;
}
