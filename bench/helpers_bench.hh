/**
 * @file
 * Data helpers for the microbenchmarks (mirrors tests/helpers.hh
 * without the gtest dependency).
 */

#ifndef GPM_BENCH_HELPERS_BENCH_HH
#define GPM_BENCH_HELPERS_BENCH_HH

#include "core/types.hh"
#include "util/rng.hh"

namespace benchdata
{

/** Random ModeMatrix with mode-monotone power and BIPS. */
inline gpm::ModeMatrix
randomMatrix(std::size_t cores, std::size_t n_modes,
             std::uint64_t seed)
{
    gpm::Rng rng(seed);
    gpm::ModeMatrix m(cores, n_modes);
    for (std::size_t c = 0; c < cores; c++) {
        double p = rng.uniform(5.0, 12.0);
        double b = rng.uniform(0.2, 2.5);
        for (std::size_t mi = 0; mi < n_modes; mi++) {
            double s = 1.0 -
                0.15 * static_cast<double>(mi) *
                    rng.uniform(0.8, 1.2);
            auto mode = static_cast<gpm::PowerMode>(mi);
            m.powerW(c, mode) = p * s * s * s;
            m.bips(c, mode) = b * s;
        }
    }
    return m;
}

} // namespace benchdata

#endif // GPM_BENCH_HELPERS_BENCH_HH
