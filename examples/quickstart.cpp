/**
 * @file
 * Quickstart: the smallest useful gpm program.
 *
 * Builds profiles for a 4-way CMP running (ammp, mcf, crafty, art),
 * runs the MaxBIPS global power manager against an 80% chip power
 * budget, and prints what it cost relative to unmanaged all-Turbo
 * execution.
 *
 *   $ ./quickstart [budget-fraction] [scale]
 *
 * `scale` (default 0.25) shortens the synthetic workloads so the
 * example runs in a few seconds; pass 1.0 for full-length runs.
 */

#include <cstdio>
#include <cstdlib>

#include "metrics/experiment.hh"
#include "power/dvfs.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace gpm;

    double budget = argc > 1 ? std::atof(argv[1]) : 0.8;
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    if (budget <= 0.0 || scale <= 0.0)
        fatal("usage: %s [budget-fraction] [scale]", argv[0]);

    // 1. The paper's DVFS table: Turbo / Eff1 / Eff2.
    DvfsTable dvfs = DvfsTable::classic3();

    // 2. Profile the workloads once per mode on the detailed core
    //    model (cached across runs).
    ProfileLibrary lib(dvfs, scale);
    lib.loadOrBuild("gpm_quickstart_profiles.bin");

    // 3. Evaluate MaxBIPS under the budget on a 4-way CMP.
    ExperimentRunner runner(lib, dvfs);
    std::vector<std::string> combo{"ammp", "mcf", "crafty", "art"};
    PolicyEval ev = runner.evaluate(combo, "MaxBIPS", budget);

    std::printf("workloads      : ammp, mcf, crafty, art (4-way)\n");
    std::printf("budget         : %.1f%% of all-Turbo power "
                "(%.1f W)\n",
                budget * 100.0,
                budget * runner.referencePowerW(combo));
    std::printf("policy         : %s\n", ev.policy.c_str());
    std::printf("chip power     : %.1f W (%.1f%% of budget)\n",
                ev.metrics.avgChipPowerW,
                ev.metrics.powerOverBudget * 100.0);
    std::printf("throughput     : %.3f BIPS\n", ev.metrics.chipBips);
    std::printf("perf cost      : %.2f%% vs all-Turbo\n",
                ev.metrics.perfDegradation * 100.0);
    std::printf("power saved    : %.1f%%  (ratio %.1f:1)\n",
                ev.metrics.powerSavings * 100.0,
                ev.metrics.powerSavings /
                    std::max(ev.metrics.perfDegradation, 1e-6));
    std::printf("mode switches  : %llu over %llu decisions\n",
                static_cast<unsigned long long>(
                    ev.managerStats.modeSwitches),
                static_cast<unsigned long long>(
                    ev.managerStats.decisions));
    return 0;
}
