/**
 * @file
 * Scenario example: a datacenter power-capping event.
 *
 * A 4-way server chip is running a mixed SPEC-like workload when
 * part of the cooling solution fails: the platform manager cuts the
 * chip budget from 95% to 65% mid-run, then partially restores it
 * to 80% (the paper's Figure 6 scenario, extended to a two-step
 * schedule). The example compares how MaxBIPS and chip-wide DVFS
 * ride through the event and prints a power/mode timeline.
 *
 *   $ ./cooling_failure [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "metrics/experiment.hh"
#include "power/dvfs.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"

namespace
{

using namespace gpm;

void
report(ExperimentRunner &runner,
       const std::vector<std::string> &combo,
       const BudgetSchedule &sched, const std::string &policy)
{
    Watts ref = runner.referencePowerW(combo);
    SimResult res = runner.timeline(combo, policy, sched);

    std::printf("--- %s ---\n", policy.c_str());
    std::printf("%8s %9s %9s  modes\n", "t [us]", "power%",
                "budget%");
    for (std::size_t i = 0; i < res.timeline.size(); i += 20) {
        const auto &tp = res.timeline[i];
        std::printf("%8.0f %8.1f%% %8.1f%%  ", tp.tUs,
                    tp.totalPowerW / ref * 100.0,
                    tp.budgetW / ref * 100.0);
        for (auto m : tp.modes)
            std::printf("%c", "TE2"[m]);
        std::printf("\n");
    }
    // Over-budget exposure: time integral of power above budget.
    double exposure = 0.0;
    double perf = 0.0;
    for (const auto &tp : res.timeline) {
        exposure +=
            std::max(0.0, tp.totalPowerW - tp.budgetW) * 50e-6;
        for (double b : tp.coreBips)
            perf += b;
    }
    std::printf("end %.0f us; over-budget exposure %.3f J; "
                "mean chip BIPS %.3f\n\n",
                res.endUs, exposure,
                perf / static_cast<double>(res.timeline.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpm;
    double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

    DvfsTable dvfs = DvfsTable::classic3();
    ProfileLibrary lib(dvfs, scale);
    lib.loadOrBuild("gpm_quickstart_profiles.bin");
    ExperimentRunner runner(lib, dvfs);

    std::vector<std::string> combo{"ammp", "mcf", "crafty", "art"};

    // Budget schedule: healthy -> cooling failure -> partial fix.
    double t1 = 4000.0 * scale * 4.0;
    double t2 = 8000.0 * scale * 4.0;
    BudgetSchedule sched(
        {{0.0, 0.95}, {t1, 0.65}, {t2, 0.80}});

    std::printf("Cooling-failure scenario on (ammp, mcf, crafty, "
                "art): budget 95%% -> 65%% at %.0f us -> 80%% at "
                "%.0f us\nModes: T=Turbo, E=Eff1, 2=Eff2\n\n",
                t1, t2);
    report(runner, combo, sched, "MaxBIPS");
    report(runner, combo, sched, "ChipWideDVFS");

    std::printf("MaxBIPS rides the cap with per-core modes "
                "(memory-bound cores absorb the cut); chip-wide "
                "DVFS overshoots or leaves slack because all cores "
                "move together.\n");
    return 0;
}
