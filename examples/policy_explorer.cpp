/**
 * @file
 * Interactive-style CLI: evaluate any policy on any workload mix at
 * any budget — the tool you reach for when deciding which global
 * management policy a design should ship with.
 *
 *   $ ./policy_explorer --policy MaxBIPS --budget 0.8 \
 *         --workloads mcf,crafty,art,sixtrack [--scale 0.25]
 *   $ ./policy_explorer --list
 *
 * Prints the full metric set (degradation, weighted slowdown,
 * budget fit, savings ratio, prediction errors) plus the per-core
 * outcome, and compares against the oracle bound.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/experiment.hh"
#include "power/dvfs.hh"
#include "trace/phase_profile.hh"
#include "trace/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
listWorkloads()
{
    using namespace gpm;
    Table t({"Workload", "Suite", "Class", "Minsts"});
    for (const auto &w : spec2000Suite()) {
        t.addRow({w.name, w.isFp ? "FP" : "INT", w.memClass,
                  Table::num(static_cast<double>(w.totalInsts) / 1e6,
                             0)});
    }
    t.print();
    std::printf("\nPolicies: MaxBIPS, MaxBIPS-BnB, Priority, "
                "PullHiPushLo, ChipWideDVFS, Oracle, Static\n");
    std::printf("Table 2 combinations: ");
    for (const auto &[key, combo] : benchmarkCombinations())
        std::printf("%s ", key.c_str());
    std::printf("(usable as --workloads %%key)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpm;

    std::string policy = "MaxBIPS";
    std::string workloads = "ammp,mcf,crafty,art";
    double budget = 0.8;
    double scale = 0.25;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto want = [&](const char *flag) {
            if (arg != flag)
                return false;
            if (i + 1 >= argc)
                fatal("missing value for %s", flag);
            return true;
        };
        if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (want("--policy")) {
            policy = argv[++i];
        } else if (want("--budget")) {
            budget = std::atof(argv[++i]);
        } else if (want("--workloads")) {
            workloads = argv[++i];
        } else if (want("--scale")) {
            scale = std::atof(argv[++i]);
        } else {
            fatal("unknown argument '%s' (try --list)",
                  arg.c_str());
        }
    }

    std::vector<std::string> combo;
    if (!workloads.empty() && workloads[0] == '%')
        combo = combination(workloads.substr(1));
    else
        combo = splitCsv(workloads);
    if (combo.empty())
        fatal("no workloads given");
    for (const auto &name : combo)
        workload(name); // validates names early

    DvfsTable dvfs = DvfsTable::classic3();
    ProfileLibrary lib(dvfs, scale);
    lib.loadOrBuild("gpm_quickstart_profiles.bin");
    ExperimentRunner runner(lib, dvfs);

    // The chosen policy and the oracle bound are independent, so
    // they go through the sweep engine as a two-point spec (also
    // exercising the API this tool exists to explore).
    SweepSpec spec;
    spec.add(combo, policy, budget);
    spec.add(combo, "Oracle", budget);
    auto evals = runner.sweep(spec);
    PolicyEval ev = evals[0];
    PolicyEval oracle = evals[1];

    std::printf("policy %s on %zu cores @ budget %.1f%%\n\n",
                policy.c_str(), combo.size(), budget * 100.0);
    Table t({"Metric", policy, "Oracle"});
    auto row = [&](const char *name, double a, double b, int dec) {
        t.addRow({name, Table::pct(a, dec), Table::pct(b, dec)});
    };
    row("perf degradation", ev.metrics.perfDegradation,
        oracle.metrics.perfDegradation, 2);
    row("weighted slowdown", ev.metrics.weightedSlowdown,
        oracle.metrics.weightedSlowdown, 2);
    row("power / budget", ev.metrics.powerOverBudget,
        oracle.metrics.powerOverBudget, 1);
    row("power savings", ev.metrics.powerSavings,
        oracle.metrics.powerSavings, 1);
    t.addRow({"chip BIPS", Table::num(ev.metrics.chipBips, 3),
              Table::num(oracle.metrics.chipBips, 3)});
    t.print();

    if (policy != "Static") {
        std::printf("\nprediction error: power %.2f%%, BIPS %.2f%% "
                    "| %llu decisions, %llu switches, %llu "
                    "overshoots\n",
                    ev.predPowerError * 100.0,
                    ev.predBipsError * 100.0,
                    static_cast<unsigned long long>(
                        ev.managerStats.decisions),
                    static_cast<unsigned long long>(
                        ev.managerStats.modeSwitches),
                    static_cast<unsigned long long>(
                        ev.managerStats.overshoots));
    }
    return 0;
}
