/**
 * @file
 * API example: defining your own workload.
 *
 * The suite workloads are statistical stand-ins for SPEC CPU2000,
 * but the same machinery manages *any* WorkloadSpec. This example
 * models a latency-critical "service" thread (bursty: alternating
 * request-processing and idle-spin phases) co-located with a
 * best-effort "batch" thread (a dense FP kernel), profiles
 * them directly with the Profiler (no library involved), and shows
 * how a chip budget squeezes the two under MaxBIPS vs Priority —
 * Priority protecting the service thread on the high-priority core.
 *
 *   $ ./custom_workload
 */

#include <cstdio>

#include "core/global_manager.hh"
#include "metrics/metrics.hh"
#include "power/dvfs.hh"
#include "sim/cmp_sim.hh"
#include "trace/profiler.hh"
#include "trace/workload.hh"
#include "util/table.hh"

namespace
{

using namespace gpm;

WorkloadSpec
serviceThread()
{
    WorkloadSpec w;
    w.name = "service";
    w.isFp = false;
    w.memClass = "bursty latency-critical";
    w.totalInsts = 6'000'000;
    w.seed = 9001;
    // Request burst: branchy integer work chasing session state
    // through the cache hierarchy (some DRAM touches).
    PhaseSpec burst{};
    burst.lengthInsts = 400'000;
    burst.fracLoad = 0.30;
    burst.fracStore = 0.12;
    burst.fracBranch = 0.14;
    burst.fracFp = 0.0;
    burst.depP = 0.25;
    burst.branchBias = 0.93;
    burst.hotFrac = 0.75;
    burst.warmFrac = 0.20;
    burst.coldFrac = 0.05;
    burst.chainFrac = 0.30;
    // Poll loop: tight, predictable, tiny footprint.
    PhaseSpec poll{};
    poll.lengthInsts = 150'000;
    poll.fracLoad = 0.15;
    poll.fracStore = 0.05;
    poll.fracBranch = 0.20;
    poll.fracFp = 0.0;
    poll.depP = 0.10;
    poll.branchBias = 0.99;
    poll.hotFrac = 1.0;
    w.phases = {burst, poll};
    return w;
}

WorkloadSpec
batchThread()
{
    WorkloadSpec w;
    w.name = "batch";
    w.isFp = true;
    w.memClass = "compute-bound best-effort";
    w.totalInsts = 7'000'000;
    w.seed = 9002;
    // Dense FP kernel over a cache-resident tile: converts watts to
    // instructions extremely well — exactly what MaxBIPS favours.
    PhaseSpec kernel{};
    kernel.lengthInsts = 1'000'000;
    kernel.fracLoad = 0.20;
    kernel.fracStore = 0.08;
    kernel.fracBranch = 0.06;
    kernel.fracFp = 0.7;
    kernel.fracFpDiv = 0.005;
    kernel.depP = 0.06;
    kernel.dep2Prob = 0.25;
    kernel.hotFrac = 1.0;
    kernel.branchBias = 0.98;
    w.phases = {kernel};
    return w;
}

} // namespace

int
main()
{
    using namespace gpm;
    DvfsTable dvfs = DvfsTable::classic3();
    Profiler prof(dvfs);

    std::printf("profiling custom workloads on the detailed core "
                "model...\n");
    WorkloadProfile service = prof.profileWorkload(serviceThread());
    WorkloadProfile batch = prof.profileWorkload(batchThread());
    auto show = [&](const WorkloadProfile &p) {
        auto s = prof.summarize(p);
        std::printf("  %-8s: %.2f IPC, %.1f W Turbo, Eff2 costs "
                    "%.1f%% time for %.1f%% power\n",
                    p.name.c_str(), s.turboIpc, s.turboPowerW,
                    s.perfDegradation[1] * 100.0,
                    s.powerSavings[1] * 100.0);
    };
    show(service);
    show(batch);

    // Priority cores count upward: put the service thread on the
    // highest-priority core (index 1 of 2).
    std::vector<const WorkloadProfile *> chip{&batch, &service};
    SimConfig cfg;
    CmpSim sim(chip, dvfs, cfg);
    Watts ref = sim.referencePowerW();
    std::vector<PowerMode> all_turbo(2, modes::Turbo);
    SimResult turbo = sim.runStatic(all_turbo);

    Table t({"Policy", "Budget", "service speed", "batch speed",
             "chip power"});
    for (const char *policy : {"MaxBIPS", "Priority"}) {
        for (double budget : {0.9, 0.75}) {
            GlobalManager mgr(dvfs, makePolicy(policy), 500.0, 2.0);
            SimResult r =
                sim.run(mgr, BudgetSchedule(budget), ref);
            auto speedups = threadSpeedups(r, turbo);
            t.addRow({policy, Table::pct(budget, 0),
                      Table::pct(speedups[1], 1),
                      Table::pct(speedups[0], 1),
                      Table::num(r.avgCorePowerW(), 2) + " W"});
        }
    }
    t.print();

    std::printf("\nUnder a tight budget the policies diverge: "
                "MaxBIPS throttles the *service* thread (memory "
                "stalls make it a poor watts-to-instructions "
                "converter) to keep the batch kernel fast, while "
                "Priority protects the high-priority service core "
                "and pushes the cut onto batch — pick the policy "
                "that matches what the chip is for.\n");
    return 0;
}
